package core

// Tests for the million-vertex scaling features: the wide-register
// sphere path (presence bitmap + binary-search hit resolution past the
// LUT width), the Options.TopK approximate mode, and the
// Options.ConvergeTol adaptive iteration loop. The exact engine's
// determinism contract — bit-identical output for every strategy and
// worker count — extends to both new modes, pinned here against the
// brute oracle and across the worker matrix.

import (
	"context"
	"fmt"
	"testing"

	"qbeep/internal/bitstring"
)

// TestScanMatchesBruteOracleWide drives the wide-register sphere path
// (sphereLUTMaxWidth < n <= sphereMaxWidth, where confirmed bitmap hits
// resolve their vertex index by binary search instead of a direct
// table) against the brute oracle and the bucket scan, across the
// worker matrix.
func TestScanMatchesBruteOracleWide(t *testing.T) {
	cases := []struct {
		n       int
		support int
		lambda  float64
		seed    uint64
	}{
		{22, 500, 1.2, 201},
		{26, 300, 0.8, 202},
	}
	workers := workerMatrix(t)
	for _, c := range cases {
		dists := map[string]*bitstring.Dist{
			"clustered": poissonCounts(c.n, bitstring.BitString(0x2b5a7)&(1<<uint(c.n)-1), c.lambda, c.support*3, c.seed),
			"uniform":   uniformDist(c.n, c.support, c.seed+100),
		}
		for kind, raw := range dists {
			oracle, err := buildStateGraphBrute(raw, PoissonEdges{Lambda: c.lambda}, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			var ref *StateGraph
			for _, strat := range []scanStrategy{scanAuto, scanBucket, scanSphere} {
				for _, w := range workers {
					label := fmt.Sprintf("n=%d %s strat=%s workers=%d", c.n, kind, strat, w)
					g, err := buildStateGraph(raw, PoissonEdges{Lambda: c.lambda}, 0.05, w, strat)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					sameEdges(t, label+" vs oracle", oracle, g)
					if ref == nil {
						ref = g
					} else {
						sameGraph(t, label+" vs ref", ref, g)
					}
				}
			}
		}
	}
}

// TestTopKGraphStructure pins the approximation contract of sparsifyTopK:
// the filtered edge list is a subset of the exact one in canonical
// order, every vertex keeps at least min(k, exact degree) edges (the
// symmetric union can only add), and the result is bit-identical across
// strategies and worker counts.
func TestTopKGraphStructure(t *testing.T) {
	raw := uniformDist(12, 500, 77)
	const lambda, eps, k = 1.5, 0.05, 4
	exact, err := BuildStateGraph(raw, PoissonEdges{Lambda: lambda}, eps)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := 0
	for i := 0; i < exact.NumVertices(); i++ {
		if d := exact.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg <= k {
		t.Fatalf("corpus too sparse to exercise top-k: max degree %d <= k %d", maxDeg, k)
	}

	var ref *StateGraph
	for _, strat := range []scanStrategy{scanAuto, scanBucket, scanSphere} {
		for _, w := range workerMatrix(t) {
			label := fmt.Sprintf("topk strat=%s workers=%d", strat, w)
			g, err := buildStateGraphCtx(context.Background(), raw, PoissonEdges{Lambda: lambda}, eps, w, strat, k)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if ref == nil {
				ref = g
			} else {
				sameGraph(t, label+" vs ref", ref, g)
			}
		}
	}
	if ref.NumEdges() >= exact.NumEdges() {
		t.Fatalf("top-k dropped nothing: %d edges vs exact %d", ref.NumEdges(), exact.NumEdges())
	}
	// Subset in canonical order: walk both ascending edge lists in step.
	ei := 0
	for _, ae := range ref.edges {
		for ei < len(exact.edges) && (exact.edges[ei].a != ae.a || exact.edges[ei].b != ae.b) {
			ei++
		}
		if ei == len(exact.edges) {
			t.Fatalf("approx edge (%d,%d) not in exact edge list (or out of order)", ae.a, ae.b)
		}
		if exact.edges[ei].weight != ae.weight {
			t.Fatalf("approx edge (%d,%d) weight %v differs from exact %v", ae.a, ae.b, ae.weight, exact.edges[ei].weight)
		}
		ei++
	}
	for i := 0; i < exact.NumVertices(); i++ {
		want := exact.Degree(i)
		if want > k {
			want = k
		}
		if got := ref.Degree(i); got < want {
			t.Fatalf("vertex %d: top-k degree %d < min(k, exact degree) = %d", i, got, want)
		}
	}
}

// TestTopKAdaptiveIdenticalAcrossWorkers extends the end-to-end
// determinism guarantee to the approximate and adaptive paths combined:
// with TopK and ConvergeTol both active, the mitigated distribution is
// bit-for-bit identical for every worker count.
func TestTopKAdaptiveIdenticalAcrossWorkers(t *testing.T) {
	raw := poissonCounts(14, bitstring.BitString(0x2cd3), 1.5, 4000, 91)
	opts := NewOptions()
	opts.TopK = 6
	opts.ConvergeTol = 1e-3
	var ref *bitstring.Dist
	for _, w := range workerMatrix(t) {
		opts.BuildWorkers = w
		out, err := Mitigate(raw, 1.5, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out
		} else {
			sameDist(t, fmt.Sprintf("topk+adaptive workers=%d", w), ref, out)
		}
	}
}

// TestTopKHellingerBound is the randomized acceptance test of the
// approximate mode: across seeds, the TopK-mitigated distribution stays
// within a small Hellinger distance of the exact engine's output on
// corpora where the cut actually bites.
func TestTopKHellingerBound(t *testing.T) {
	const n, lambda, k = 12, 1.5, 8
	for _, seed := range []uint64{301, 302, 303, 304, 305} {
		raw := poissonCounts(n, bitstring.BitString(0xb52)&(1<<uint(n)-1), lambda, 6000, seed)
		g, err := BuildStateGraph(raw, PoissonEdges{Lambda: lambda}, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		maxDeg := 0
		for i := 0; i < g.NumVertices(); i++ {
			if d := g.Degree(i); d > maxDeg {
				maxDeg = d
			}
		}
		if maxDeg <= k {
			t.Fatalf("seed %d: corpus too sparse (max degree %d) for a meaningful top-%d cut", seed, maxDeg, k)
		}
		exact, err := Mitigate(raw, lambda, NewOptions())
		if err != nil {
			t.Fatal(err)
		}
		opts := NewOptions()
		opts.TopK = k
		got, err := Mitigate(raw, lambda, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Measured ≈ 0.12 across seeds on this corpus; 0.2 is the
		// contract bound with headroom against rng drift.
		if h := bitstring.Hellinger(exact, got); h > 0.2 {
			t.Errorf("seed %d: Hellinger(exact, top-%d) = %v exceeds bound 0.2", seed, k, h)
		}
	}
}

// TestConvergeTolZeroBitwise pins the contract that a zero tolerance is
// the fixed schedule: all Iterations rounds run and the output matches
// the default configuration bitwise.
func TestConvergeTolZeroBitwise(t *testing.T) {
	raw := poissonCounts(10, bitstring.BitString(0x2b5), 1.2, 3000, 61)
	base, err := Mitigate(raw, 1.2, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions()
	opts.ConvergeTol = 0
	iters := 0
	opts.OnIteration = func(IterationStats) { iters++ }
	got, err := Mitigate(raw, 1.2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if iters != opts.Iterations {
		t.Fatalf("tolerance 0 ran %d iterations, want the fixed %d", iters, opts.Iterations)
	}
	sameDist(t, "converge-tol=0", base, got)
}

// TestConvergeTolEarlyExit checks the adaptive loop: a loose tolerance
// stops before the fixed schedule, the triggering iteration's step
// delta is at or below the tolerance, and the early-exited output is
// deterministic across the worker matrix.
func TestConvergeTolEarlyExit(t *testing.T) {
	raw := poissonCounts(10, bitstring.BitString(0x1a6), 1.2, 3000, 62)
	opts := NewOptions()
	opts.ConvergeTol = 0.01
	var stats []IterationStats
	opts.OnIteration = func(s IterationStats) { stats = append(stats, s) }
	ref, err := Mitigate(raw, 1.2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 || len(stats) >= opts.Iterations {
		t.Fatalf("expected an early exit, ran %d of %d iterations", len(stats), opts.Iterations)
	}
	last := stats[len(stats)-1]
	if last.StepHellinger > opts.ConvergeTol {
		t.Fatalf("exited with step Hellinger %v above tolerance %v", last.StepHellinger, opts.ConvergeTol)
	}
	for _, s := range stats[:len(stats)-1] {
		if s.StepHellinger <= opts.ConvergeTol {
			t.Fatalf("iteration %d already met the tolerance (%v) but the loop continued", s.Iteration, s.StepHellinger)
		}
	}
	opts.OnIteration = nil
	for _, w := range workerMatrix(t) {
		opts.BuildWorkers = w
		out, err := Mitigate(raw, 1.2, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameDist(t, fmt.Sprintf("adaptive workers=%d", w), ref, out)
	}
}

// TestStepHellingerMatchesSnapshot validates the in-loop Hellinger
// accumulation against the definitionally-correct two-snapshot form.
func TestStepHellingerMatchesSnapshot(t *testing.T) {
	raw := poissonCounts(8, 0b10110100, 1.5, 3000, 71)
	g, err := BuildStateGraph(raw, PoissonEdges{Lambda: 1.5}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		before := g.Dist()
		st := g.Step(1 / float64(i))
		want := bitstring.Hellinger(before, g.Dist())
		if !approx(st.Hellinger, want, 1e-9) {
			t.Fatalf("iteration %d: StepStats.Hellinger %v vs snapshot %v", i, st.Hellinger, want)
		}
	}
}
