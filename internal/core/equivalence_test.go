package core

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
)

// workerMatrix returns the worker counts the equivalence tests sweep:
// {1, 2, 4, 8, GOMAXPROCS} plus any extras from QBEEP_TEST_WORKERS (a
// comma-separated list, set by the Makefile race target) — deduplicated.
func workerMatrix(t *testing.T) []int {
	t.Helper()
	counts := []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)}
	if env := os.Getenv("QBEEP_TEST_WORKERS"); env != "" {
		for _, f := range strings.Split(env, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				t.Fatalf("QBEEP_TEST_WORKERS entry %q: %v", f, err)
			}
			counts = append(counts, v)
		}
	}
	seen := map[int]bool{}
	out := counts[:0]
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// uniformDist draws `support` distinct outcomes uniformly over width n
// with random positive counts — the widest Hamming-weight spread, which
// exercises the bucket windowing hardest.
func uniformDist(n, support int, seed uint64) *bitstring.Dist {
	rng := mathx.NewRNG(seed)
	d := bitstring.NewDist(n)
	for d.Support() < support {
		v := bitstring.BitString(rng.Uint64() & (1<<uint(n) - 1))
		d.Add(v, float64(rng.Intn(50)+1))
	}
	return d
}

// sameGraph asserts full equality including radius and pruned telemetry —
// the contract between engine variants (strategies × worker counts).
func sameGraph(t *testing.T, label string, want, got *StateGraph) {
	t.Helper()
	if got.Radius() != want.Radius() {
		t.Fatalf("%s: radius %d want %d", label, got.Radius(), want.Radius())
	}
	if got.pruned != want.pruned {
		t.Fatalf("%s: pruned %d want %d", label, got.pruned, want.pruned)
	}
	sameEdges(t, label, want, got)
}

// sameEdges asserts the parts that define mitigation output — vertex set,
// exact edge list with weights, CSR layout. This is the contract against
// the brute oracle: the engine scans only the effective radius, so its
// radius/pruned telemetry is narrower than the seed scan's, but the edge
// set and every weight must be bit-for-bit identical.
func sameEdges(t *testing.T, label string, want, got *StateGraph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("%s: vertices %d want %d", label, got.NumVertices(), want.NumVertices())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: edges %d want %d", label, got.NumEdges(), want.NumEdges())
	}
	for ei := range want.edges {
		w, g := want.edges[ei], got.edges[ei]
		if w.a != g.a || w.b != g.b || w.weight != g.weight {
			t.Fatalf("%s: edge %d = (%d,%d,%v) want (%d,%d,%v)",
				label, ei, g.a, g.b, g.weight, w.a, w.b, w.weight)
		}
	}
	for i := 0; i <= want.NumVertices(); i++ {
		if got.adjStart[i] != want.adjStart[i] {
			t.Fatalf("%s: adjStart[%d] = %d want %d", label, i, got.adjStart[i], want.adjStart[i])
		}
	}
	for i := range want.adjEdges {
		if got.adjEdges[i] != want.adjEdges[i] {
			t.Fatalf("%s: adjEdges[%d] = %d want %d", label, i, got.adjEdges[i], want.adjEdges[i])
		}
	}
}

func sameDist(t *testing.T, label string, want, got *bitstring.Dist) {
	t.Helper()
	if got.Support() != want.Support() {
		t.Fatalf("%s: support %d want %d", label, got.Support(), want.Support())
	}
	for _, v := range want.Outcomes() {
		if got.Count(v) != want.Count(v) {
			t.Fatalf("%s: count[%s] = %v want %v",
				label, bitstring.Format(v, want.Width()), got.Count(v), want.Count(v))
		}
	}
}

// TestScanMatchesBruteOracle drives both discovery strategies and the
// full worker matrix against the seed's serial O(V²) scan on randomized
// inputs across widths 4–16, asserting bit-for-bit identical edge sets,
// weights, pruned counts, and CSR layout.
func TestScanMatchesBruteOracle(t *testing.T) {
	cases := []struct {
		n       int
		support int
		lambda  float64
		seed    uint64
	}{
		{4, 12, 1.0, 1},
		{5, 30, 0.7, 2},
		{6, 60, 1.5, 3},
		{8, 150, 2.0, 4},
		{10, 300, 1.2, 5},
		{12, 400, 2.5, 6},
		{14, 500, 0.5, 7},
		{16, 600, 1.5, 8},
	}
	workers := workerMatrix(t)
	for _, c := range cases {
		// Mix a clustered and a uniform corpus: clustered data packs the
		// weight buckets, uniform data spreads them.
		dists := map[string]*bitstring.Dist{
			"clustered": poissonCounts(c.n, bitstring.BitString(0x5a5a)&(1<<uint(c.n)-1), c.lambda, c.support*3, c.seed),
			"uniform":   uniformDist(c.n, c.support, c.seed+100),
		}
		for kind, raw := range dists {
			oracle, err := buildStateGraphBrute(raw, PoissonEdges{Lambda: c.lambda}, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			var ref *StateGraph // first engine variant; the rest must match it fully
			for _, strat := range []scanStrategy{scanAuto, scanBucket, scanSphere} {
				for _, w := range workers {
					label := fmt.Sprintf("n=%d %s strat=%s workers=%d", c.n, kind, strat, w)
					g, err := buildStateGraph(raw, PoissonEdges{Lambda: c.lambda}, 0.05, w, strat)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					sameEdges(t, label+" vs oracle", oracle, g)
					if ref == nil {
						ref = g
					} else {
						sameGraph(t, label+" vs ref", ref, g)
					}
				}
			}
		}
	}
}

// TestScanMatchesOracleHAMMERWeighter repeats the oracle check under the
// ablation edge model, whose radius/threshold interplay differs from the
// Poisson tail.
func TestScanMatchesOracleHAMMERWeighter(t *testing.T) {
	raw := uniformDist(10, 200, 11)
	oracle, err := buildStateGraphBrute(raw, InverseDistanceEdges{}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var ref *StateGraph
	for _, strat := range []scanStrategy{scanBucket, scanSphere} {
		g, err := buildStateGraph(raw, InverseDistanceEdges{}, 0.05, 4, strat)
		if err != nil {
			t.Fatal(err)
		}
		sameEdges(t, fmt.Sprintf("hammer strat=%s vs oracle", strat), oracle, g)
		if ref == nil {
			ref = g
		} else {
			sameGraph(t, fmt.Sprintf("hammer strat=%s vs ref", strat), ref, g)
		}
	}
}

// TestMitigateIdenticalAcrossWorkers pins the determinism guarantee end
// to end: Mitigate output is bit-for-bit identical for every worker
// count and equals the brute-force oracle run through the same schedule.
func TestMitigateIdenticalAcrossWorkers(t *testing.T) {
	for _, c := range []struct {
		n      int
		lambda float64
		seed   uint64
	}{
		{4, 1.0, 21},
		{9, 1.5, 22},
		{16, 2.0, 23},
	} {
		raw := poissonCounts(c.n, bitstring.BitString(0x2cd3)&(1<<uint(c.n)-1), c.lambda, 2000, c.seed)
		opts := NewOptions()

		// Brute oracle: same schedule on the reference-scanned graph.
		og, err := buildStateGraphBrute(raw, PoissonEdges{Lambda: c.lambda}, opts.Epsilon)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= opts.Iterations; i++ {
			og.Step(1 / float64(i))
		}
		oracle := og.Dist().Normalized(raw.Total())

		for _, w := range workerMatrix(t) {
			opts.BuildWorkers = w
			out, err := Mitigate(raw, c.lambda, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameDist(t, fmt.Sprintf("n=%d workers=%d", c.n, w), oracle, out)
		}
	}
}

// TestCSRAdjacencyConsistent checks the CSR layout against the edge
// list: every edge appears exactly once in each endpoint's row, rows are
// ascending, and degrees sum to 2E.
func TestCSRAdjacencyConsistent(t *testing.T) {
	raw := uniformDist(10, 250, 31)
	g, err := BuildStateGraph(raw, PoissonEdges{Lambda: 1.5}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var degSum int
	for i := 0; i < g.NumVertices(); i++ {
		inc := g.IncidentEdges(i)
		if len(inc) != g.Degree(i) {
			t.Fatalf("vertex %d: len(IncidentEdges) %d != Degree %d", i, len(inc), g.Degree(i))
		}
		degSum += len(inc)
		for k, ei := range inc {
			e := g.edges[ei]
			if e.a != i && e.b != i {
				t.Fatalf("vertex %d: edge %d does not touch it", i, ei)
			}
			if k > 0 && inc[k-1] >= ei {
				t.Fatalf("vertex %d: incident edges not ascending: %v", i, inc)
			}
		}
	}
	if degSum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d want %d", degSum, 2*g.NumEdges())
	}
}

// TestStepAllocationFree pins the scratch-reuse contract: after the
// first call, the 20-iteration mitigation loop allocates nothing.
func TestStepAllocationFree(t *testing.T) {
	raw := uniformDist(10, 300, 41)
	g, err := BuildStateGraph(raw, PoissonEdges{Lambda: 1.5}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("want a non-trivial graph")
	}
	g.Step(1) // warm the scratch
	if n := testing.AllocsPerRun(100, func() {
		g.Step(0.5)
	}); n != 0 {
		t.Fatalf("Step allocates %v per op after warm-up", n)
	}
}

// TestGraphFidelityMatchesDistSnapshot checks the tracked-mitigation
// fast path against the definitionally-correct snapshot form.
func TestGraphFidelityMatchesDistSnapshot(t *testing.T) {
	raw := poissonCounts(8, 0b10110100, 1.5, 3000, 51)
	ideal := bitstring.NewDist(8)
	ideal.Add(0b10110100, 1)
	g, err := BuildStateGraph(raw, PoissonEdges{Lambda: 1.5}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		g.Step(1 / float64(i))
		fast := g.Fidelity(ideal)
		slow := bitstring.Fidelity(ideal, g.Dist())
		if !approx(fast, slow, 1e-12) {
			t.Fatalf("iteration %d: Fidelity %v vs snapshot %v", i, fast, slow)
		}
	}
	if g.Fidelity(nil) != 0 {
		t.Error("nil ideal should yield 0")
	}
	if g.Fidelity(bitstring.NewDist(8)) != 0 {
		t.Error("empty ideal should yield 0")
	}
}
