package core

import "qbeep/internal/obs"

// Package-level metric handles: resolved once so hot paths pay a single
// atomic op per update (see internal/obs).
var (
	metGraphBuild  = obs.Default.Timer("core.graph.build")
	metGraphVerts  = obs.Default.Gauge("core.graph.vertices")
	metGraphEdges  = obs.Default.Gauge("core.graph.edges")
	metGraphPruned = obs.Default.Gauge("core.graph.pruned_edges")
	metGraphRadius = obs.Default.Gauge("core.graph.radius")
	// Edge-scan strategy counters: how often each discovery path of
	// edgescan.go was selected.
	metGraphScanBucket = obs.Default.Counter("core.graph.scan_bucket")
	metGraphScanSphere = obs.Default.Counter("core.graph.scan_sphere")

	metMitigateRuns  = obs.Default.Counter("core.mitigate.runs")
	metMitigateIters = obs.Default.Counter("core.mitigate.iterations")
	// Iterations the adaptive ConvergeTol early exit skipped relative to
	// the configured schedule (0 for fixed-schedule runs).
	metMitigateSaved = obs.Default.Counter("core.mitigate.iterations_saved")
	metMitigate      = obs.Default.Timer("core.mitigate")
	metFlowMoved     = obs.Default.Histogram("core.mitigate.flow_moved")
	metFinalL1       = obs.Default.Histogram("core.mitigate.final_l1_delta")
	// Convergence telemetry (paper Fig. 7(c) territory): per-iteration
	// residual flow for every run, per-iteration Hellinger distance to
	// the ideal for tracked runs.
	metIterFlow  = obs.Default.Histogram("core.mitigate.iter_flow")
	metHellinger = obs.Default.Histogram("core.mitigate.hellinger")

	// Quality observatory (DESIGN.md §16): the raw→mitigated Hellinger
	// shift of every run, worst sample stamped with its trace ID. The
	// companion quality.pst_improvement histogram is observed where
	// ground truth lives (internal/experiments); the per-backend
	// quality.lambda labeled gauge is set by EstimateLambda.
	metQualityShift = obs.Default.Histogram("quality.hellinger_shift")
)
