package core

import (
	"testing"

	"qbeep/internal/bitstring"
)

// qualityFixture is the TestMitigateTrackedTrace distribution: truth
// 000, errors clustered nearby.
func qualityFixture() (raw, ideal *bitstring.Dist) {
	raw = bitstring.NewDist(3)
	raw.Add(0b000, 50)
	raw.Add(0b001, 20)
	raw.Add(0b010, 20)
	raw.Add(0b111, 10)
	ideal = bitstring.NewDist(3)
	ideal.Add(0b000, 1)
	return raw, ideal
}

// TestOnQualityUntracked: the hook fires once with mode-centered
// spectra and a consistent Hellinger shift.
func TestOnQualityUntracked(t *testing.T) {
	raw, _ := qualityFixture()
	opts := NewOptions()
	var got []QualityStats
	opts.OnQuality = func(q QualityStats) { got = append(got, q) }
	out, err := Mitigate(raw, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("OnQuality fired %d times, want 1", len(got))
	}
	q := got[0]
	if want := bitstring.Hellinger(raw, out); !approx(q.HellingerShift, want, 1e-12) {
		t.Errorf("hellinger shift %v, want %v", q.HellingerShift, want)
	}
	if q.HellingerShift <= 0 {
		t.Error("mitigation moved mass; shift must be positive")
	}
	if !approx(q.PosteriorEntropy, out.Entropy(), 1e-12) {
		t.Errorf("posterior entropy %v, want %v", q.PosteriorEntropy, out.Entropy())
	}
	if q.Iterations != opts.Iterations || q.Converged {
		t.Errorf("fixed schedule: iterations=%d converged=%v", q.Iterations, q.Converged)
	}
	if q.SpectrumRef != "mode" {
		t.Errorf("untracked runs center on the raw mode, got %q", q.SpectrumRef)
	}
	if len(q.SpectrumBefore) != 4 || len(q.SpectrumAfter) != 4 {
		t.Fatalf("3-qubit spectra must have 4 distance bins: %v / %v", q.SpectrumBefore, q.SpectrumAfter)
	}
	var before, after float64
	for i := range q.SpectrumBefore {
		before += q.SpectrumBefore[i]
		after += q.SpectrumAfter[i]
	}
	if !approx(before, 1, 1e-9) || !approx(after, 1, 1e-9) {
		t.Errorf("spectra must each sum to 1: %v / %v", before, after)
	}
	if q.FidelityRaw != 0 || q.FidelityMitigated != 0 {
		t.Error("untracked runs must not report ground-truth fidelity")
	}
}

// TestOnQualityTracked: with an ideal, the hook reports ground-truth
// fidelity/Hellinger and expected-centered spectra, and mitigation
// concentrates mass at distance 0.
func TestOnQualityTracked(t *testing.T) {
	raw, ideal := qualityFixture()
	opts := NewOptions()
	var q QualityStats
	opts.OnQuality = func(s QualityStats) { q = s }
	out, trace, err := MitigateTracked(raw, 1, opts, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(q.FidelityRaw, trace[0], 1e-12) || !approx(q.FidelityMitigated, trace[len(trace)-1], 1e-12) {
		t.Errorf("fidelities %v/%v disagree with trace %v/%v", q.FidelityRaw, q.FidelityMitigated, trace[0], trace[len(trace)-1])
	}
	if q.HellingerMitigated >= q.HellingerRaw {
		t.Errorf("mitigation should reduce Hellinger distance: %v -> %v", q.HellingerRaw, q.HellingerMitigated)
	}
	if q.SpectrumRef != "expected" {
		t.Errorf("tracked runs center on the ideal mode, got %q", q.SpectrumRef)
	}
	if q.SpectrumAfter[0] <= q.SpectrumBefore[0] {
		t.Errorf("mass at distance 0 should grow: %v -> %v", q.SpectrumBefore[0], q.SpectrumAfter[0])
	}
	if !approx(q.SpectrumAfter[0], out.Prob(0b000), 1e-9) {
		t.Errorf("spectrum bin 0 %v should equal mitigated P(truth) %v", q.SpectrumAfter[0], out.Prob(0b000))
	}
}

// TestOnQualityConverged: with an adaptive tolerance loose enough to
// trigger, the hook reports convergence and the executed count.
func TestOnQualityConverged(t *testing.T) {
	raw, _ := qualityFixture()
	opts := NewOptions()
	opts.ConvergeTol = 0.5 // trips immediately
	var q QualityStats
	opts.OnQuality = func(s QualityStats) { q = s }
	if _, err := Mitigate(raw, 1, opts); err != nil {
		t.Fatal(err)
	}
	if !q.Converged {
		t.Error("loose tolerance must report converged")
	}
	if q.Iterations >= opts.Iterations {
		t.Errorf("early exit expected: executed %d of %d", q.Iterations, opts.Iterations)
	}
}
