package core

import (
	"fmt"
	"math"

	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
)

// The paper's conclusion names "a better λ estimation function" as the
// main avenue for future work, and §4.2 attributes most mitigation
// regressions to λ mis-estimation on machines whose published calibration
// had drifted. ProbeCalibrator implements that direction: it compares
// Eq. 2's predictions against the errors *realized* by a handful of probe
// circuits with known outputs, fits a multiplicative correction
//
//	λ_corrected = α · λ_eq2
//
// by least squares through the origin, and applies it to subsequent
// estimates. Probes are cheap single-answer circuits (the RB workloads of
// internal/algorithms are ideal) run on the same backend shortly before
// the production job.
//
// The correction transfers best within a circuit family and depth regime:
// deep probes whose outputs approach the maximally-mixed state saturate
// (EHD caps near n/2 regardless of λ), which biases α low for shallow
// production circuits. Probe with depths bracketing the production
// workload's.

// ProbeResult is one probe circuit's evidence: the Eq. 2 estimate and the
// realized expected Hamming distance of its output around the known
// answer (which, under the Poisson error model, estimates the true λ).
type ProbeResult struct {
	EstimatedLambda float64
	RealizedEHD     float64
}

// ProbeResultFrom scores one probe induction.
func ProbeResultFrom(est LambdaBreakdown, counts *bitstring.Dist, expected bitstring.BitString) (ProbeResult, error) {
	if counts == nil || counts.Total() == 0 {
		return ProbeResult{}, fmt.Errorf("core: empty probe counts")
	}
	return ProbeResult{
		EstimatedLambda: est.Lambda(),
		RealizedEHD:     counts.ExpectedHamming(expected),
	}, nil
}

// ProbeCalibrator holds the fitted correction.
type ProbeCalibrator struct {
	Alpha  float64 // λ_corrected = Alpha · λ_eq2
	Probes int
}

// FitProbeCalibrator fits α by least squares through the origin:
// α = Σ λ̂·EHD / Σ λ̂². At least two probes with positive estimates are
// required.
func FitProbeCalibrator(probes []ProbeResult) (*ProbeCalibrator, error) {
	var num, den float64
	n := 0
	for _, p := range probes {
		if p.EstimatedLambda <= 0 {
			continue
		}
		num += p.EstimatedLambda * p.RealizedEHD
		den += p.EstimatedLambda * p.EstimatedLambda
		n++
	}
	if n < 2 || den == 0 {
		return nil, fmt.Errorf("core: need >= 2 usable probes, got %d", n)
	}
	alpha := num / den
	if alpha <= 0 {
		return nil, fmt.Errorf("core: degenerate probe fit (alpha %v)", alpha)
	}
	return &ProbeCalibrator{Alpha: alpha, Probes: n}, nil
}

// Correct applies the fitted correction to an Eq. 2 estimate.
func (p *ProbeCalibrator) Correct(est LambdaBreakdown) float64 {
	return p.Alpha * est.Lambda()
}

// Quality summarizes how well the corrected estimates match the realized
// EHDs on the probes themselves (root-mean-square error before and after
// correction). It quantifies whether probing helped.
func (p *ProbeCalibrator) Quality(probes []ProbeResult) (rmseBefore, rmseAfter float64) {
	var sb, sa []float64
	for _, pr := range probes {
		if pr.EstimatedLambda <= 0 {
			continue
		}
		db := pr.EstimatedLambda - pr.RealizedEHD
		da := p.Alpha*pr.EstimatedLambda - pr.RealizedEHD
		sb = append(sb, db*db)
		sa = append(sa, da*da)
	}
	return sqrt(mathx.Mean(sb)), sqrt(mathx.Mean(sa))
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
