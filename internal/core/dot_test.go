package core

import (
	"strings"
	"testing"

	"qbeep/internal/bitstring"
)

func dotGraph(t *testing.T) *StateGraph {
	t.Helper()
	d := bitstring.NewDist(3)
	d.Add(0b000, 80)
	d.Add(0b001, 12)
	d.Add(0b011, 8)
	g, err := BuildStateGraph(d, PoissonEdges{Lambda: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWriteDOT(t *testing.T) {
	g := dotGraph(t)
	var b strings.Builder
	if err := g.WriteDOT(&b, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"graph stategraph", "000", "001", "011", "--", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in DOT:\n%s", want, out)
		}
	}
	if strings.Count(out, "--") != g.NumEdges() {
		t.Errorf("edge lines %d want %d", strings.Count(out, "--"), g.NumEdges())
	}
}

func TestWriteDOTEdgeCap(t *testing.T) {
	g := dotGraph(t)
	var b strings.Builder
	if err := g.WriteDOT(&b, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "--") != 1 {
		t.Errorf("cap ignored: %s", b.String())
	}
}

func TestStats(t *testing.T) {
	g := dotGraph(t)
	s := g.Stats()
	if s.Vertices != 3 || s.Edges != g.NumEdges() || s.Total != 100 {
		t.Errorf("stats %+v", s)
	}
	if !strings.Contains(s.String(), "3 vertices") {
		t.Errorf("String: %s", s)
	}
}
