package core

import (
	"fmt"

	"qbeep/internal/bitstring"
)

// Options configures the iterative mitigation. NewOptions returns the
// paper's published configuration (§4.1): ε = 0.05, 20 iterations,
// learning rate 1/n.
type Options struct {
	// Iterations is the number of state-graph update rounds.
	Iterations int
	// Epsilon is the edge-weight threshold ε; edges with model weight
	// below it are not materialized.
	Epsilon float64
	// LearningRate returns η for iteration i (1-based). The default is the
	// dampened 1/i schedule that prevents cycling between local nodes.
	LearningRate func(i int) float64
	// Weighter is the edge model; nil selects PoissonEdges with the λ
	// passed to Mitigate.
	Weighter EdgeWeighter
}

// NewOptions returns the paper's default configuration.
func NewOptions() Options {
	return Options{
		Iterations:   20,
		Epsilon:      0.05,
		LearningRate: func(i int) float64 { return 1 / float64(i) },
	}
}

func (o *Options) validate() error {
	if o.Iterations <= 0 {
		return fmt.Errorf("core: iterations %d must be positive", o.Iterations)
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("core: epsilon %v outside (0,1)", o.Epsilon)
	}
	return nil
}

// Mitigate runs Q-BEEP over raw counts with the pre-induction rate λ and
// returns the mitigated distribution (same total mass, re-normalized).
func Mitigate(counts *bitstring.Dist, lambda float64, opts Options) (*bitstring.Dist, error) {
	out, _, err := mitigate(counts, lambda, opts, nil)
	return out, err
}

// MitigateTracked is Mitigate plus the per-iteration fidelity trace
// against the supplied ideal distribution (Fig. 7(c)). trace[0] is the
// pre-mitigation fidelity; trace[i] the fidelity after iteration i.
func MitigateTracked(counts *bitstring.Dist, lambda float64, opts Options, ideal *bitstring.Dist) (*bitstring.Dist, []float64, error) {
	if ideal == nil {
		return nil, nil, fmt.Errorf("core: MitigateTracked requires an ideal distribution")
	}
	return mitigate(counts, lambda, opts, ideal)
}

func mitigate(counts *bitstring.Dist, lambda float64, opts Options, ideal *bitstring.Dist) (*bitstring.Dist, []float64, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if counts == nil || counts.Support() == 0 {
		return nil, nil, fmt.Errorf("core: empty counts")
	}
	if lambda < 0 {
		return nil, nil, fmt.Errorf("core: negative lambda %v", lambda)
	}
	if opts.LearningRate == nil {
		opts.LearningRate = func(i int) float64 { return 1 / float64(i) }
	}
	w := opts.Weighter
	if w == nil {
		w = PoissonEdges{Lambda: lambda}
	}
	g, err := BuildStateGraph(counts, w, opts.Epsilon)
	if err != nil {
		return nil, nil, err
	}
	var trace []float64
	if ideal != nil {
		trace = append(trace, bitstring.Fidelity(ideal, counts))
	}
	for i := 1; i <= opts.Iterations; i++ {
		g.Step(opts.LearningRate(i))
		if ideal != nil {
			trace = append(trace, bitstring.Fidelity(ideal, g.Dist()))
		}
	}
	out := g.Dist().Normalized(counts.Total())
	return out, trace, nil
}
