package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"qbeep/internal/bitstring"
	"qbeep/internal/obs"
)

// IterationStats is the per-iteration observability record the mitigation
// loop hands to Options.OnIteration (and, through cmd/qbeep -trace, to
// users): where probability mass moved and how fast the fixed point is
// approached (paper Fig. 7(c) territory, without needing an ideal
// distribution).
type IterationStats struct {
	// Iteration is 1-based.
	Iteration int `json:"iteration"`
	// Eta is the learning rate used this iteration.
	Eta float64 `json:"eta"`
	// FlowMoved is the gross mass carried along edges.
	FlowMoved float64 `json:"flow_moved"`
	// L1Delta is the net per-vertex change Σ|Δcount| (≈ 0 at convergence).
	L1Delta float64 `json:"l1_delta"`
	// StepHellinger is the Hellinger distance between this iteration's
	// pre- and post-step distributions — the per-iteration convergence
	// delta that Options.ConvergeTol tests against.
	StepHellinger float64 `json:"step_hellinger"`
	// Vertices and Edges describe the state graph under the ε threshold.
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// Duration is the wall time of this iteration.
	Duration time.Duration `json:"duration_ns"`
}

// QualityStats is the end-of-run quality record the mitigation loop
// hands to Options.OnQuality: the Hamming-spectrum quality block of a
// runledger.Record (DESIGN.md §16), computed once after the final
// iteration. The ground-truth fields are populated only on tracked
// runs (MitigateTracked); spectra are centered on the ideal mode when
// one is known, else on the raw mode.
type QualityStats struct {
	// HellingerShift is H(raw, mitigated): how far induction moved the
	// distribution (needs no ground truth).
	HellingerShift float64
	// PosteriorEntropy is the Shannon entropy (bits) of the mitigated
	// distribution.
	PosteriorEntropy float64
	// Iterations actually executed; Converged reports whether the
	// adaptive tolerance (Options.ConvergeTol) was met.
	Iterations int
	Converged  bool
	// SpectrumRef names the spectrum center: "expected" (ideal mode)
	// or "mode" (raw mode). SpectrumBefore/After are per-Hamming-
	// distance probability mass around it, index i = distance i.
	SpectrumRef    string
	SpectrumBefore []float64
	SpectrumAfter  []float64
	// Ground truth (tracked runs only): Bhattacharyya fidelity and
	// Hellinger distance to the ideal, before and after mitigation.
	FidelityRaw        float64
	FidelityMitigated  float64
	HellingerRaw       float64
	HellingerMitigated float64
}

// Options configures the iterative mitigation. NewOptions returns the
// paper's published configuration (§4.1): ε = 0.05, 20 iterations,
// learning rate 1/n.
type Options struct {
	// Iterations is the number of state-graph update rounds.
	Iterations int
	// Epsilon is the edge-weight threshold ε; edges with model weight
	// below it are not materialized.
	Epsilon float64
	// LearningRate returns η for iteration i (1-based). The default is the
	// dampened 1/i schedule that prevents cycling between local nodes.
	LearningRate func(i int) float64
	// Weighter is the edge model; nil selects PoissonEdges with the λ
	// passed to Mitigate.
	Weighter EdgeWeighter
	// OnIteration, when non-nil, receives one IterationStats per update
	// round. Per-iteration wall clocks are only taken when set, so the
	// nil default costs nothing.
	OnIteration func(IterationStats)
	// OnQuality, when non-nil, receives one QualityStats after the
	// final iteration — the hook the -run-ledger recorder hangs off.
	// The Hamming spectra and entropy are computed only when set
	// (two O(support) passes); the Hellinger shift itself is always
	// observed into the quality.hellinger_shift histogram.
	OnQuality func(QualityStats)
	// BuildWorkers caps the worker count of the state-graph edge scan
	// (<= 0 selects GOMAXPROCS). The mitigated output is identical for
	// every value — this is purely a throughput knob.
	BuildWorkers int
	// ConvergeTol, when positive, exits the update loop early once the
	// per-iteration Hellinger delta (StepStats.Hellinger) falls to or
	// below the tolerance — the flow plateaus well before the paper's
	// fixed 20 rounds on most corpora. Zero keeps the fixed schedule and
	// is bitwise identical to it; the skipped rounds are recorded as
	// iterations_saved on the "core.mitigate" span and counter.
	ConvergeTol float64
	// TopK, when positive, sparsifies the state graph to each vertex's
	// k heaviest incident edges (symmetric union — an edge survives when
	// either endpoint ranks it). This is the opt-in approximate mode:
	// the mitigated distribution deviates from the exact engine by a
	// small Hellinger distance (tested) in exchange for bounded degree.
	// Zero keeps the exact graph.
	TopK int
}

// NewOptions returns the paper's default configuration.
func NewOptions() Options {
	return Options{
		Iterations:   20,
		Epsilon:      0.05,
		LearningRate: func(i int) float64 { return 1 / float64(i) },
	}
}

func (o *Options) validate() error {
	if o.Iterations <= 0 {
		return fmt.Errorf("core: iterations %d must be positive", o.Iterations)
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("core: epsilon %v outside (0,1)", o.Epsilon)
	}
	if o.ConvergeTol < 0 || math.IsNaN(o.ConvergeTol) {
		return fmt.Errorf("core: converge tolerance %v must be >= 0", o.ConvergeTol)
	}
	if o.TopK < 0 {
		return fmt.Errorf("core: top-k %d must be >= 0", o.TopK)
	}
	return nil
}

// Mitigate runs Q-BEEP over raw counts with the pre-induction rate λ and
// returns the mitigated distribution (same total mass, re-normalized).
func Mitigate(counts *bitstring.Dist, lambda float64, opts Options) (*bitstring.Dist, error) {
	out, _, err := mitigateCtx(context.Background(), counts, lambda, opts, nil)
	return out, err
}

// MitigateCtx is Mitigate with trace-context propagation: the
// "core.mitigate" span (and its graph-build and per-iteration children)
// parent under the span active in ctx.
func MitigateCtx(ctx context.Context, counts *bitstring.Dist, lambda float64, opts Options) (*bitstring.Dist, error) {
	out, _, err := mitigateCtx(ctx, counts, lambda, opts, nil)
	return out, err
}

// MitigateTracked is Mitigate plus the per-iteration fidelity trace
// against the supplied ideal distribution (Fig. 7(c)). trace[0] is the
// pre-mitigation fidelity; trace[i] the fidelity after iteration i.
// Tracked runs additionally record the per-iteration Hellinger distance
// to ideal into the "core.mitigate.hellinger" histogram and onto the
// iteration spans, so convergence is observable without a callback.
func MitigateTracked(counts *bitstring.Dist, lambda float64, opts Options, ideal *bitstring.Dist) (*bitstring.Dist, []float64, error) {
	return MitigateTrackedCtx(context.Background(), counts, lambda, opts, ideal)
}

// MitigateTrackedCtx is MitigateTracked with trace-context propagation.
func MitigateTrackedCtx(ctx context.Context, counts *bitstring.Dist, lambda float64, opts Options, ideal *bitstring.Dist) (*bitstring.Dist, []float64, error) {
	if ideal == nil {
		return nil, nil, fmt.Errorf("core: MitigateTracked requires an ideal distribution")
	}
	return mitigateCtx(ctx, counts, lambda, opts, ideal)
}

func mitigateCtx(ctx context.Context, counts *bitstring.Dist, lambda float64, opts Options, ideal *bitstring.Dist) (*bitstring.Dist, []float64, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if counts == nil || counts.Support() == 0 {
		return nil, nil, fmt.Errorf("core: empty counts")
	}
	if lambda < 0 {
		return nil, nil, fmt.Errorf("core: negative lambda %v", lambda)
	}
	if opts.LearningRate == nil {
		opts.LearningRate = func(i int) float64 { return 1 / float64(i) }
	}
	w := opts.Weighter
	if w == nil {
		w = PoissonEdges{Lambda: lambda}
	}
	ctx, sp := obs.Start(ctx, "core.mitigate")
	// Ending via defer keeps the span from leaking on the graph-build
	// error return (qbeep-lint spanend); attributes below still precede it.
	defer sp.End()
	// Convergence observations carry the trace ID so the worst sample on
	// /metrics (_window_worst) names the trace to inspect in qbeep-trace.
	traceID := obs.TraceIDFrom(ctx)
	stop := metMitigate.Start()
	g, err := buildStateGraphCtx(ctx, counts, w, opts.Epsilon, opts.BuildWorkers, scanAuto, opts.TopK)
	if err != nil {
		return nil, nil, err
	}
	var trace []float64
	if ideal != nil {
		trace = append(trace, bitstring.Fidelity(ideal, counts))
	}
	var last StepStats
	// The round body lives in its own scope so the per-iteration span's
	// lifecycle is a straight start→End line (qbeep-lint spanend). It
	// returns whether the adaptive tolerance was met and the loop should
	// exit early, so the converged attrs land on the triggering span.
	iterate := func(i int) bool {
		eta := opts.LearningRate(i)
		var t0 time.Time
		if opts.OnIteration != nil {
			t0 = time.Now() //qbeep:allow-time per-iteration callback timing, not kernel state
		}
		// One child span per update round; inert (and free) unless a
		// sink is installed.
		_, isp := obs.Start(ctx, "core.mitigate.iter")
		last = g.Step(eta)
		isp.SetAttr("iteration", i)
		isp.SetAttr("eta", eta)
		isp.SetAttr("flow_moved", last.FlowMoved)
		isp.SetAttr("l1_delta", last.L1Delta)
		isp.SetAttr("step_hellinger", last.Hellinger)
		converged := opts.ConvergeTol > 0 && last.Hellinger <= opts.ConvergeTol && i < opts.Iterations
		if converged {
			isp.SetAttr("converged", true)
			isp.SetAttr("iterations_saved", opts.Iterations-i)
		}
		metIterFlow.ObserveTrace(last.FlowMoved, traceID)
		if opts.OnIteration != nil {
			opts.OnIteration(IterationStats{
				Iteration:     i,
				Eta:           eta,
				FlowMoved:     last.FlowMoved,
				L1Delta:       last.L1Delta,
				StepHellinger: last.Hellinger,
				Vertices:      g.NumVertices(),
				Edges:         g.NumEdges(),
				Duration:      time.Since(t0), //qbeep:allow-time per-iteration callback timing, not kernel state
			})
		}
		if ideal != nil {
			// Fidelity straight off the node slice: snapshotting a Dist
			// per iteration was the tracked loop's dominant allocation.
			// Hellinger is derived from the same Bhattacharyya sum, so
			// the nodes are scanned once per iteration, not twice.
			f := g.Fidelity(ideal)
			trace = append(trace, f)
			h := hellingerFromFidelity(f)
			metHellinger.ObserveTrace(h, traceID)
			isp.SetAttr("hellinger", h)
		}
		isp.End()
		return converged
	}
	executed := 0
	for i := 1; i <= opts.Iterations; i++ {
		executed = i
		if iterate(i) {
			break
		}
	}
	saved := opts.Iterations - executed
	out := g.Dist().Normalized(counts.Total())
	stop()
	metMitigateRuns.Inc()
	metMitigateIters.Add(int64(executed))
	metMitigateSaved.Add(int64(saved))
	metFlowMoved.ObserveTrace(last.FlowMoved, traceID)
	metFinalL1.ObserveTrace(last.L1Delta, traceID)
	shift := bitstring.Hellinger(counts, out)
	metQualityShift.ObserveTrace(shift, traceID)
	sp.SetAttr("iterations", executed)
	sp.SetAttr("iterations_saved", saved)
	sp.SetAttr("vertices", g.NumVertices())
	sp.SetAttr("hellinger_shift", shift)
	if opts.OnQuality != nil {
		q := QualityStats{
			HellingerShift:   shift,
			PosteriorEntropy: out.Entropy(),
			Iterations:       executed,
			Converged:        opts.ConvergeTol > 0 && last.Hellinger <= opts.ConvergeTol,
		}
		if ideal != nil {
			q.FidelityRaw = trace[0]
			q.FidelityMitigated = trace[len(trace)-1]
			q.HellingerRaw = hellingerFromFidelity(q.FidelityRaw)
			q.HellingerMitigated = hellingerFromFidelity(q.FidelityMitigated)
			if center, ok := ideal.Top(); ok {
				q.SpectrumRef = "expected"
				q.SpectrumBefore = counts.HammingSpectrum(center)
				q.SpectrumAfter = out.HammingSpectrum(center)
			}
		} else if center, ok := counts.Top(); ok {
			q.SpectrumRef = "mode"
			q.SpectrumBefore = counts.HammingSpectrum(center)
			q.SpectrumAfter = out.HammingSpectrum(center)
		}
		opts.OnQuality(q)
	}
	obs.Logger().Debug("mitigation finished",
		"iterations", executed, "iterations_saved", saved, "vertices", g.NumVertices(),
		"edges", g.NumEdges(), "final_l1_delta", last.L1Delta)
	return out, trace, nil
}
