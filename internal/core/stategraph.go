package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"slices"
	"sort"
	"time"

	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
	"qbeep/internal/obs"
)

// EdgeWeighter maps a Hamming distance to a reclassification weight. The
// production model is PoissonEdges (Eq. 4); InverseDistanceEdges reproduces
// HAMMER's fixed local weighting inside the same iterative engine, used by
// the edge-model ablation.
type EdgeWeighter interface {
	// Weight returns the edge weight for two strings at Hamming distance
	// d >= 1. Weights below the state-graph threshold ε prune the edge.
	Weight(d int) float64
	// MaxRadius returns the largest distance worth considering for the
	// threshold eps (edges beyond it are guaranteed below threshold).
	MaxRadius(eps float64, n int) int
}

// PoissonEdges weighs edges by the Poisson pmf at the strings' Hamming
// distance, with rate λ estimated pre-induction via Eq. 2.
type PoissonEdges struct {
	Lambda float64
}

// Weight implements EdgeWeighter.
func (p PoissonEdges) Weight(d int) float64 {
	return mathx.Poisson{Lambda: p.Lambda}.PMF(d)
}

// MaxRadius implements EdgeWeighter via the Poisson tail cutoff.
func (p PoissonEdges) MaxRadius(eps float64, n int) int {
	r := mathx.Poisson{Lambda: p.Lambda}.TailCutoff(eps)
	if r > n {
		return n
	}
	return r
}

// InverseDistanceEdges is the HAMMER-style one-size-fits-all local
// weighting: weight 2^(-d) truncated at MaxD (HAMMER's published
// neighborhood stops at the second Hamming shell), independent of circuit
// and device. A zero MaxD selects the default of 2.
type InverseDistanceEdges struct {
	MaxD int
}

func (w InverseDistanceEdges) maxD() int {
	if w.MaxD <= 0 {
		return 2
	}
	return w.MaxD
}

// Weight implements EdgeWeighter.
func (w InverseDistanceEdges) Weight(d int) float64 {
	if d < 0 || d > w.maxD() {
		return 0
	}
	v := 1.0
	for i := 0; i < d; i++ {
		v /= 2
	}
	return v
}

// MaxRadius implements EdgeWeighter.
func (w InverseDistanceEdges) MaxRadius(eps float64, n int) int {
	for d := 1; d <= n; d++ {
		if w.Weight(d) < eps {
			return d
		}
	}
	return n
}

// node is one state-graph vertex: an observed bit-string with its
// (fractional) observation count. Probabilities derive from counts on
// demand.
type node struct {
	value bitstring.BitString
	count float64
}

// edge connects two vertices with the model weight of their distance.
// Edges are stored in canonical ascending (a, b) order with a < b.
type edge struct {
	a, b   int // node indices
	weight float64
}

// StateGraph is the Bayesian network over observed bit-strings (paper
// §3.4, Fig. 5): vertices are the observed outcomes, edges link pairs whose
// model weight passes the ε threshold.
//
// The adjacency is laid out in CSR form (adjStart/adjEdges) and the Step
// working set lives in a reusable scratch struct, so the 20-iteration
// mitigation loop is allocation-free after the first call.
type StateGraph struct {
	n          int
	nodes      []node
	edges      []edge
	adjStart   []int32 // CSR row offsets: vertex i's incident edges are adjEdges[adjStart[i]:adjStart[i+1]]
	adjEdges   []int32 // flat incident-edge indices, ascending within each vertex
	total      float64
	radius     int
	selfWeight float64 // model weight at distance 0 (the "stay" term)
	pruned     int     // candidate pairs within the scan radius dropped by the ε threshold
	scratch    stepScratch
}

func validateBuild(counts *bitstring.Dist, w EdgeWeighter, eps float64) error {
	if counts == nil || counts.Support() == 0 {
		return fmt.Errorf("core: empty counts")
	}
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("core: epsilon %v outside (0,1)", eps)
	}
	if w == nil {
		return fmt.Errorf("core: nil edge weighter")
	}
	return nil
}

// initStateGraph allocates the vertex set (one node per observed outcome,
// ascending) and resolves the model radius. It returns the node values as
// a flat slice for the edge scan's cache-friendly inner loop.
func initStateGraph(counts *bitstring.Dist, w EdgeWeighter, eps float64) (*StateGraph, []bitstring.BitString) {
	g := &StateGraph{n: counts.Width(), total: counts.Total(), selfWeight: w.Weight(0)}
	outcomes := counts.Outcomes()
	g.nodes = make([]node, len(outcomes))
	vals := make([]bitstring.BitString, len(outcomes))
	for i, o := range outcomes {
		g.nodes[i] = node{value: o, count: counts.Count(o)}
		vals[i] = o
	}
	g.radius = w.MaxRadius(eps, g.n)
	return g, vals
}

// buildCSR lays the vertex→incident-edge adjacency out as a flat CSR
// pair: two counting passes, no per-vertex slices, no reallocation.
func (g *StateGraph) buildCSR() {
	nV := len(g.nodes)
	counts := make([]int32, nV+1)
	for _, e := range g.edges {
		counts[e.a+1]++
		counts[e.b+1]++
	}
	g.buildCSRCounted(counts)
}

// buildCSRCounted finishes the CSR layout from precomputed degrees
// (vertex i's degree at index i+1 — the layout scanEdges tallies while
// materializing edges, saving a counting pass over the edge list). Takes
// ownership of counts as the offset array.
func (g *StateGraph) buildCSRCounted(counts []int32) {
	nV := len(g.nodes)
	g.adjStart = counts
	for i := 0; i < nV; i++ {
		g.adjStart[i+1] += g.adjStart[i]
	}
	g.adjEdges = make([]int32, 2*len(g.edges))
	next := make([]int32, nV)
	copy(next, g.adjStart[:nV])
	for ei, e := range g.edges {
		g.adjEdges[next[e.a]] = int32(ei)
		next[e.a]++
		g.adjEdges[next[e.b]] = int32(ei)
		next[e.b]++
	}
}

// BuildStateGraph constructs the graph from raw counts under the given
// edge model and threshold. Vertices are created only for observed
// (non-zero) outcomes, so the graph scales with shots, not with 2^n.
//
// Edge creation is thresholded on the model's shell mass w(d) >= ε (the
// paper's scalability rule), but the stored weight is the per-string
// likelihood w(d)/C(n,d): the model assigns mass w(d) to the whole
// distance-d shell, and an individual string is one of C(n,d)
// equally-likely landing sites. Without this normalization the
// combinatorially-large middle shells would out-pull the true solution.
//
// Discovery is popcount-bucketed (or a Hamming-ball walk on narrow
// registers) instead of the O(V²) pairwise scan — see edgescan.go — and
// the output is bit-for-bit identical to that serial scan.
func BuildStateGraph(counts *bitstring.Dist, w EdgeWeighter, eps float64) (*StateGraph, error) {
	return BuildStateGraphWorkers(counts, w, eps, 0)
}

// sparsifyTopK prunes the graph to each vertex's k heaviest incident
// edges — the opt-in approximation behind Options.TopK. Selection is by
// (weight descending, canonical edge index ascending), so ties resolve
// identically on every run, and an edge survives when either endpoint
// selects it (the symmetric k-NN union), keeping the graph undirected
// with every vertex retaining min(k, degree) edges or more. Surviving
// edges keep their canonical ascending (a, b) order, so the filtered
// graph — like the exact scan — is independent of the worker count.
// Returns the number of edges dropped.
func (g *StateGraph) sparsifyTopK(k int) int {
	nV := len(g.nodes)
	if k <= 0 || len(g.edges) == 0 {
		return 0
	}
	keep := make([]bool, len(g.edges))
	var scratch []int32
	for i := 0; i < nV; i++ {
		inc := g.IncidentEdges(i)
		if len(inc) <= k {
			for _, ei := range inc {
				keep[ei] = true
			}
			continue
		}
		scratch = append(scratch[:0], inc...)
		slices.SortFunc(scratch, func(x, y int32) int {
			wx, wy := g.edges[x].weight, g.edges[y].weight
			if wx > wy {
				return -1
			}
			if wx < wy {
				return 1
			}
			return int(x - y)
		})
		for _, ei := range scratch[:k] {
			keep[ei] = true
		}
	}
	deg := make([]int32, nV+1)
	out := g.edges[:0]
	for ei := range g.edges {
		if !keep[ei] {
			continue
		}
		e := g.edges[ei]
		deg[e.a+1]++
		deg[e.b+1]++
		out = append(out, e)
	}
	dropped := len(g.edges) - len(out)
	if dropped == 0 {
		return 0 // existing CSR still valid
	}
	g.edges = out
	g.buildCSRCounted(deg)
	return dropped
}

// BuildStateGraphWorkers is BuildStateGraph with an explicit cap on the
// edge-scan worker count (<= 0 selects GOMAXPROCS). The result is
// independent of the worker count: vertex ranges emit their edges in
// canonical ascending (a, b) order and are concatenated in range order,
// so the edge array — and every downstream Step — never depends on
// scheduling.
func BuildStateGraphWorkers(counts *bitstring.Dist, w EdgeWeighter, eps float64, workers int) (*StateGraph, error) {
	return buildStateGraphCtx(context.Background(), counts, w, eps, workers, scanAuto, 0)
}

// BuildStateGraphCtx is BuildStateGraphWorkers with trace-context
// propagation: the "core.graph.build" span becomes a child of the span
// active in ctx, and the parallel edge scan's worker spans parent under
// it.
func BuildStateGraphCtx(ctx context.Context, counts *bitstring.Dist, w EdgeWeighter, eps float64, workers int) (*StateGraph, error) {
	return buildStateGraphCtx(ctx, counts, w, eps, workers, scanAuto, 0)
}

func buildStateGraph(counts *bitstring.Dist, w EdgeWeighter, eps float64, workers int, strat scanStrategy) (*StateGraph, error) {
	return buildStateGraphCtx(context.Background(), counts, w, eps, workers, strat, 0)
}

func buildStateGraphCtx(ctx context.Context, counts *bitstring.Dist, w EdgeWeighter, eps float64, workers int, strat scanStrategy, topK int) (*StateGraph, error) {
	if err := validateBuild(counts, w, eps); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(ctx, "core.graph.build")
	t0 := time.Now() //qbeep:allow-time span/metric timing, not kernel state
	g, vals := initStateGraph(counts, w, eps)
	tab := newWeightTable(w, eps, g.n, g.radius)
	// Scan only to the effective radius: the model's tail cutoff always
	// ends in at least one shell that fails ε, and such dead boundary
	// shells are the largest by far. Edges are unaffected (those shells
	// cannot produce any); only the pruned tally narrows its scope.
	g.radius = tab.effectiveRadius()
	var used scanStrategy
	var deg []int32
	g.edges, deg, g.pruned, used = scanEdges(ctx, vals, g.n, g.radius, tab, workers, strat)
	g.buildCSRCounted(deg)
	dropped := 0
	if topK > 0 {
		dropped = g.sparsifyTopK(topK)
	}
	elapsed := time.Since(t0) //qbeep:allow-time span/metric timing, not kernel state
	metGraphBuild.ObserveDuration(elapsed)
	metGraphVerts.Set(float64(len(g.nodes)))
	metGraphEdges.Set(float64(len(g.edges)))
	metGraphPruned.Set(float64(g.pruned))
	metGraphRadius.Set(float64(g.radius))
	switch used {
	case scanSphere:
		metGraphScanSphere.Inc()
	case scanBucket:
		metGraphScanBucket.Inc()
	}
	sp.SetAttr("vertices", len(g.nodes))
	sp.SetAttr("edges", len(g.edges))
	sp.SetAttr("pruned", g.pruned)
	sp.SetAttr("strategy", used.String())
	if topK > 0 {
		sp.SetAttr("top_k", topK)
		sp.SetAttr("edges_dropped", dropped)
	}
	sp.End()
	// Gated on the level check: assembling the key/value list boxes a
	// dozen arguments, a measurable slice of the per-build allocations
	// when debug logging is off (the default).
	if l := obs.Logger(); l.Enabled(ctx, slog.LevelDebug) {
		l.Debug("state graph built",
			"vertices", len(g.nodes), "edges", len(g.edges), "pruned", g.pruned,
			"radius", g.radius, "width", g.n, "strategy", used.String(),
			"top_k", topK, "edges_dropped", dropped, "elapsed", elapsed)
	}
	return g, nil
}

// buildStateGraphBrute runs the seed's serial O(V²) reference scan (see
// bruteScanEdges). Kept as the oracle for the equivalence tests and the
// baseline for BenchmarkBuildStateGraphBrute.
func buildStateGraphBrute(counts *bitstring.Dist, w EdgeWeighter, eps float64) (*StateGraph, error) {
	if err := validateBuild(counts, w, eps); err != nil {
		return nil, err
	}
	g, vals := initStateGraph(counts, w, eps)
	g.edges, g.pruned = bruteScanEdges(vals, g.n, g.radius, w, eps)
	g.buildCSR()
	return g, nil
}

// NumVertices returns the vertex count.
func (g *StateGraph) NumVertices() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *StateGraph) NumEdges() int { return len(g.edges) }

// Radius returns the maximum Hamming distance spanned by edges: the
// largest shell whose model weight passes the ε threshold.
func (g *StateGraph) Radius() int { return g.radius }

// Degree returns the number of edges incident to vertex i.
func (g *StateGraph) Degree(i int) int {
	return int(g.adjStart[i+1] - g.adjStart[i])
}

// IncidentEdges returns the indices of the edges incident to vertex i,
// ascending. The slice aliases the graph's CSR storage — callers must
// not modify it.
func (g *StateGraph) IncidentEdges(i int) []int32 {
	return g.adjEdges[g.adjStart[i]:g.adjStart[i+1]]
}

// Dist snapshots the current vertex counts as a distribution, pre-sized
// to the vertex count so million-vertex snapshots insert without rehash.
func (g *StateGraph) Dist() *bitstring.Dist {
	d := bitstring.NewDistCap(g.n, len(g.nodes))
	for _, nd := range g.nodes {
		if nd.count > 0 {
			d.Add(nd.value, nd.count)
		}
	}
	return d
}

// Fidelity computes the classical (Bhattacharyya) fidelity between ideal
// and the graph's current counts without materializing an intermediate
// Dist — the tracked-mitigation loop calls it once per iteration, and
// the snapshot Dist used to be that loop's dominant allocation. Nodes
// are stored ascending and the operand order matches bitstring.Fidelity,
// so the result equals bitstring.Fidelity(ideal, g.Dist()).
func (g *StateGraph) Fidelity(ideal *bitstring.Dist) float64 {
	if ideal == nil || ideal.Total() == 0 || g.total <= 0 {
		return 0
	}
	var s float64
	for i := range g.nodes {
		c := g.nodes[i].count
		if c <= 0 {
			continue
		}
		if q := ideal.Count(g.nodes[i].value); q > 0 {
			s += math.Sqrt(q / ideal.Total() * c / g.total)
		}
	}
	return s * s
}

// Hellinger computes the Hellinger distance between ideal and the
// graph's current counts, H = sqrt(1 − Σ sqrt(p q)), straight off the
// node slice like Fidelity; it equals bitstring.Hellinger(ideal,
// g.Dist()). The tracked-mitigation loop records it per iteration.
func (g *StateGraph) Hellinger(ideal *bitstring.Dist) float64 {
	return hellingerFromFidelity(g.Fidelity(ideal))
}

// hellingerFromFidelity converts a Bhattacharyya fidelity F = BC² into
// the Hellinger distance sqrt(1 − BC), mirroring bitstring.Hellinger.
func hellingerFromFidelity(f float64) float64 {
	bc := math.Sqrt(f)
	if bc > 1 {
		bc = 1
	}
	return math.Sqrt(1 - bc)
}

// stepScratch holds Step's working set, sized once per graph so the
// iteration loop performs no allocations after the first call.
//
//qbeep:pooled
type stepScratch struct {
	prob, z, outflow, inflow, scale, delta []float64 // per vertex
	flowAB, flowBA                         []float64 // per edge
}

func (s *stepScratch) ensure(nV, nE int) {
	if cap(s.prob) < nV {
		s.prob = make([]float64, nV)
		s.z = make([]float64, nV)
		s.outflow = make([]float64, nV)
		s.inflow = make([]float64, nV)
		s.scale = make([]float64, nV)
		s.delta = make([]float64, nV)
	}
	s.prob = s.prob[:nV]
	s.z = s.z[:nV]
	s.outflow = s.outflow[:nV]
	s.inflow = s.inflow[:nV]
	s.scale = s.scale[:nV]
	s.delta = s.delta[:nV]
	if cap(s.flowAB) < nE {
		s.flowAB = make([]float64, nE)
		s.flowBA = make([]float64, nE)
	}
	s.flowAB = s.flowAB[:nE]
	s.flowBA = s.flowBA[:nE]
}

// Step performs one reclassification iteration with learning rate eta
// (paper Algorithm 1, inner loop). Each node redistributes its counts
// according to the normalized Bayesian posterior of Eq. 4: an observation
// of A belongs to neighbor B with probability
//
//	P(A→B) = w_AB·P_B / (w_0·P_A + Σ_C w_AC·P_C)
//
// where w_0 is the model weight at distance 0 — the "observation is
// genuine" hypothesis — and the denominator normalizes the posterior over
// all hypotheses for node A. The learning rate scales the moved fraction
// (paper: η = 1/iteration to prevent cycling between local nodes); the
// reclassification-overflow cap of Algorithm 1 guards η > 1 ablations.
//
// This posterior form is what makes the fixed point entropy-aware: on a
// balanced (high-entropy) distribution the in/out flows cancel and the
// distribution is left alone, while a small error node adjacent to a
// dominant string hands essentially all of its counts over — the behavior
// §5 of the paper describes.
//
// All working vectors live in the graph's scratch struct: after the first
// call, Step allocates nothing (pinned by TestStepAllocationFree).
//
// The returned StepStats reports how much mass actually moved, so callers
// can observe convergence without re-diffing distributions.
//
//qbeep:allocfree
func (g *StateGraph) Step(eta float64) StepStats {
	if g.total <= 0 {
		return StepStats{}
	}
	g.scratch.ensure(len(g.nodes), len(g.edges))
	s := &g.scratch
	prob := s.prob
	for i := range g.nodes {
		prob[i] = g.nodes[i].count / g.total
	}
	// Posterior normalizer per node: Z_A = w_0·P_A + Σ w_AC·P_C.
	z := s.z
	for i := range z {
		z[i] = g.selfWeight * prob[i]
	}
	for _, e := range g.edges {
		z[e.a] += e.weight * prob[e.b]
		z[e.b] += e.weight * prob[e.a]
	}
	outflow, inflow := s.outflow, s.inflow
	for i := range outflow {
		outflow[i] = 0
		inflow[i] = 0
	}
	flowAB, flowBA := s.flowAB, s.flowBA
	for ei, e := range g.edges {
		var fab, fba float64
		if z[e.a] > 0 {
			fab = eta * g.nodes[e.a].count * e.weight * prob[e.b] / z[e.a]
			outflow[e.a] += fab
			inflow[e.b] += fab
		}
		if z[e.b] > 0 {
			fba = eta * g.nodes[e.b].count * e.weight * prob[e.a] / z[e.b]
			outflow[e.b] += fba
			inflow[e.a] += fba
		}
		flowAB[ei] = fab
		flowBA[ei] = fba
	}
	// Reclassification overflow: cap outflow at count + inflow (paper
	// Algorithm 1). With eta <= 1 the posterior normalization already
	// keeps outflow <= count, so the cap only binds in ablations.
	scale := s.scale
	for i := range scale {
		scale[i] = 1
		if limit := g.nodes[i].count + inflow[i]; outflow[i] > limit && outflow[i] > 0 {
			scale[i] = limit / outflow[i]
		}
	}
	delta := s.delta
	for i := range delta {
		delta[i] = 0
	}
	var st StepStats
	for ei, e := range g.edges {
		fab := flowAB[ei] * scale[e.a]
		fba := flowBA[ei] * scale[e.b]
		delta[e.a] += fba - fab
		delta[e.b] += fab - fba
		st.FlowMoved += fab + fba
	}
	// The apply pass also accumulates the Bhattacharyya overlap between
	// the pre- and post-step counts, yielding the per-iteration Hellinger
	// delta (the Options.ConvergeTol signal) without a second scan. It
	// only reads the counts, so the update itself stays bit-identical to
	// the fixed-schedule path.
	prevTotal := g.total
	var bcSum float64
	g.total = 0
	for i := range g.nodes {
		c := g.nodes[i].count + delta[i]
		if c < 0 {
			c = 0
		}
		if d := c - g.nodes[i].count; d >= 0 {
			st.L1Delta += d
		} else {
			st.L1Delta -= d
		}
		bcSum += math.Sqrt(g.nodes[i].count * c)
		g.nodes[i].count = c
		g.total += c
	}
	if prevTotal > 0 && g.total > 0 {
		bc := bcSum / math.Sqrt(prevTotal*g.total)
		if bc > 1 {
			bc = 1
		}
		st.Hellinger = math.Sqrt(1 - bc)
	} else if prevTotal > 0 || g.total > 0 {
		st.Hellinger = 1
	}
	return st
}

// StepStats summarizes one reclassification iteration.
type StepStats struct {
	// FlowMoved is the gross mass carried along edges (both directions,
	// after the overflow cap).
	FlowMoved float64
	// L1Delta is Σ_i |Δcount_i|: the net per-vertex change actually
	// applied, the natural convergence signal (≈ 0 at the fixed point).
	L1Delta float64
	// Hellinger is the Hellinger distance between the pre- and post-step
	// normalized distributions — the per-iteration delta that
	// Options.ConvergeTol compares against for adaptive early exit.
	Hellinger float64
}

// Vertices returns the observed strings sorted ascending (testing/debug).
func (g *StateGraph) Vertices() []bitstring.BitString {
	out := make([]bitstring.BitString, len(g.nodes))
	for i, nd := range g.nodes {
		out[i] = nd.value
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
