package core

import (
	"fmt"
	"sort"
	"time"

	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
	"qbeep/internal/obs"
)

// EdgeWeighter maps a Hamming distance to a reclassification weight. The
// production model is PoissonEdges (Eq. 4); InverseDistanceEdges reproduces
// HAMMER's fixed local weighting inside the same iterative engine, used by
// the edge-model ablation.
type EdgeWeighter interface {
	// Weight returns the edge weight for two strings at Hamming distance
	// d >= 1. Weights below the state-graph threshold ε prune the edge.
	Weight(d int) float64
	// MaxRadius returns the largest distance worth considering for the
	// threshold eps (edges beyond it are guaranteed below threshold).
	MaxRadius(eps float64, n int) int
}

// PoissonEdges weighs edges by the Poisson pmf at the strings' Hamming
// distance, with rate λ estimated pre-induction via Eq. 2.
type PoissonEdges struct {
	Lambda float64
}

// Weight implements EdgeWeighter.
func (p PoissonEdges) Weight(d int) float64 {
	return mathx.Poisson{Lambda: p.Lambda}.PMF(d)
}

// MaxRadius implements EdgeWeighter via the Poisson tail cutoff.
func (p PoissonEdges) MaxRadius(eps float64, n int) int {
	r := mathx.Poisson{Lambda: p.Lambda}.TailCutoff(eps)
	if r > n {
		return n
	}
	return r
}

// InverseDistanceEdges is the HAMMER-style one-size-fits-all local
// weighting: weight 2^(-d) truncated at MaxD (HAMMER's published
// neighborhood stops at the second Hamming shell), independent of circuit
// and device. A zero MaxD selects the default of 2.
type InverseDistanceEdges struct {
	MaxD int
}

func (w InverseDistanceEdges) maxD() int {
	if w.MaxD <= 0 {
		return 2
	}
	return w.MaxD
}

// Weight implements EdgeWeighter.
func (w InverseDistanceEdges) Weight(d int) float64 {
	if d < 0 || d > w.maxD() {
		return 0
	}
	v := 1.0
	for i := 0; i < d; i++ {
		v /= 2
	}
	return v
}

// MaxRadius implements EdgeWeighter.
func (w InverseDistanceEdges) MaxRadius(eps float64, n int) int {
	for d := 1; d <= n; d++ {
		if w.Weight(d) < eps {
			return d
		}
	}
	return n
}

// node is one state-graph vertex: an observed bit-string with its
// (fractional) observation count. Probabilities derive from counts on
// demand.
type node struct {
	value bitstring.BitString
	count float64
}

// edge connects two vertices with the model weight of their distance.
type edge struct {
	a, b   int // node indices
	weight float64
}

// StateGraph is the Bayesian network over observed bit-strings (paper
// §3.4, Fig. 5): vertices are the observed outcomes, edges link pairs whose
// model weight passes the ε threshold.
type StateGraph struct {
	n          int // register width
	nodes      []node
	edges      []edge
	adj        [][]int // node index -> incident edge indices
	total      float64
	radius     int
	selfWeight float64 // model weight at distance 0 (the "stay" term)
	pruned     int     // candidate pairs within radius dropped by the ε threshold
}

// BuildStateGraph constructs the graph from raw counts under the given
// edge model and threshold. Vertices are created only for observed
// (non-zero) outcomes, so the graph scales with shots, not with 2^n.
func BuildStateGraph(counts *bitstring.Dist, w EdgeWeighter, eps float64) (*StateGraph, error) {
	if counts == nil || counts.Support() == 0 {
		return nil, fmt.Errorf("core: empty counts")
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: epsilon %v outside (0,1)", eps)
	}
	if w == nil {
		return nil, fmt.Errorf("core: nil edge weighter")
	}
	sp := obs.StartSpan("core.graph.build")
	t0 := time.Now()
	g := &StateGraph{n: counts.Width(), total: counts.Total(), selfWeight: w.Weight(0)}
	outcomes := counts.Outcomes()
	g.nodes = make([]node, len(outcomes))
	for i, o := range outcomes {
		g.nodes[i] = node{value: o, count: counts.Count(o)}
	}
	g.adj = make([][]int, len(g.nodes))
	g.radius = w.MaxRadius(eps, g.n)

	// Pairwise scan: O(V²) Hamming checks. V is bounded by the shot count,
	// giving the O(N·r) per-update complexity the paper quotes once edges
	// are materialized.
	//
	// Edge creation is thresholded on the model's shell mass w(d) >= ε
	// (the paper's scalability rule), but the stored weight is the
	// per-string likelihood w(d)/C(n,d): the model assigns mass w(d) to
	// the whole distance-d shell, and an individual string is one of
	// C(n,d) equally-likely landing sites. Without this normalization the
	// combinatorially-large middle shells would out-pull the true
	// solution.
	for i := 0; i < len(g.nodes); i++ {
		for j := i + 1; j < len(g.nodes); j++ {
			d := bitstring.Hamming(g.nodes[i].value, g.nodes[j].value)
			if d > g.radius {
				continue
			}
			wt := w.Weight(d)
			if wt < eps {
				g.pruned++
				continue
			}
			perString := wt / float64(bitstring.SphereSize(g.n, d))
			g.edges = append(g.edges, edge{a: i, b: j, weight: perString})
			g.adj[i] = append(g.adj[i], len(g.edges)-1)
			g.adj[j] = append(g.adj[j], len(g.edges)-1)
		}
	}
	elapsed := time.Since(t0)
	metGraphBuild.ObserveDuration(elapsed)
	metGraphVerts.Set(float64(len(g.nodes)))
	metGraphEdges.Set(float64(len(g.edges)))
	metGraphPruned.Set(float64(g.pruned))
	metGraphRadius.Set(float64(g.radius))
	sp.SetAttr("vertices", len(g.nodes))
	sp.SetAttr("edges", len(g.edges))
	sp.SetAttr("pruned", g.pruned)
	sp.End()
	obs.Logger().Debug("state graph built",
		"vertices", len(g.nodes), "edges", len(g.edges), "pruned", g.pruned,
		"radius", g.radius, "width", g.n, "elapsed", elapsed)
	return g, nil
}

// NumVertices returns the vertex count.
func (g *StateGraph) NumVertices() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *StateGraph) NumEdges() int { return len(g.edges) }

// Radius returns the maximum Hamming distance spanned by edges.
func (g *StateGraph) Radius() int { return g.radius }

// Dist snapshots the current vertex counts as a distribution.
func (g *StateGraph) Dist() *bitstring.Dist {
	d := bitstring.NewDist(g.n)
	for _, nd := range g.nodes {
		if nd.count > 0 {
			d.Add(nd.value, nd.count)
		}
	}
	return d
}

// Step performs one reclassification iteration with learning rate eta
// (paper Algorithm 1, inner loop). Each node redistributes its counts
// according to the normalized Bayesian posterior of Eq. 4: an observation
// of A belongs to neighbor B with probability
//
//	P(A→B) = w_AB·P_B / (w_0·P_A + Σ_C w_AC·P_C)
//
// where w_0 is the model weight at distance 0 — the "observation is
// genuine" hypothesis — and the denominator normalizes the posterior over
// all hypotheses for node A. The learning rate scales the moved fraction
// (paper: η = 1/iteration to prevent cycling between local nodes); the
// reclassification-overflow cap of Algorithm 1 guards η > 1 ablations.
//
// This posterior form is what makes the fixed point entropy-aware: on a
// balanced (high-entropy) distribution the in/out flows cancel and the
// distribution is left alone, while a small error node adjacent to a
// dominant string hands essentially all of its counts over — the behavior
// §5 of the paper describes.
//
// The returned StepStats reports how much mass actually moved, so callers
// can observe convergence without re-diffing distributions.
func (g *StateGraph) Step(eta float64) StepStats {
	if g.total <= 0 {
		return StepStats{}
	}
	nV := len(g.nodes)
	prob := make([]float64, nV)
	for i, nd := range g.nodes {
		prob[i] = nd.count / g.total
	}
	// Posterior normalizer per node: Z_A = w_0·P_A + Σ w_AC·P_C.
	z := make([]float64, nV)
	for i := range z {
		z[i] = g.selfWeight * prob[i]
	}
	for _, e := range g.edges {
		z[e.a] += e.weight * prob[e.b]
		z[e.b] += e.weight * prob[e.a]
	}
	outflow := make([]float64, nV)
	inflow := make([]float64, nV)
	flowAB := make([]float64, len(g.edges))
	flowBA := make([]float64, len(g.edges))
	for ei, e := range g.edges {
		if z[e.a] > 0 {
			f := eta * g.nodes[e.a].count * e.weight * prob[e.b] / z[e.a]
			flowAB[ei] = f
			outflow[e.a] += f
			inflow[e.b] += f
		}
		if z[e.b] > 0 {
			f := eta * g.nodes[e.b].count * e.weight * prob[e.a] / z[e.b]
			flowBA[ei] = f
			outflow[e.b] += f
			inflow[e.a] += f
		}
	}
	// Reclassification overflow: cap outflow at count + inflow (paper
	// Algorithm 1). With eta <= 1 the posterior normalization already
	// keeps outflow <= count, so the cap only binds in ablations.
	scale := make([]float64, nV)
	for i := range scale {
		scale[i] = 1
		if limit := g.nodes[i].count + inflow[i]; outflow[i] > limit && outflow[i] > 0 {
			scale[i] = limit / outflow[i]
		}
	}
	delta := make([]float64, nV)
	var st StepStats
	for ei, e := range g.edges {
		fab := flowAB[ei] * scale[e.a]
		fba := flowBA[ei] * scale[e.b]
		delta[e.a] += fba - fab
		delta[e.b] += fab - fba
		st.FlowMoved += fab + fba
	}
	g.total = 0
	for i := range g.nodes {
		c := g.nodes[i].count + delta[i]
		if c < 0 {
			c = 0
		}
		if d := c - g.nodes[i].count; d >= 0 {
			st.L1Delta += d
		} else {
			st.L1Delta -= d
		}
		g.nodes[i].count = c
		g.total += c
	}
	return st
}

// StepStats summarizes one reclassification iteration.
type StepStats struct {
	// FlowMoved is the gross mass carried along edges (both directions,
	// after the overflow cap).
	FlowMoved float64
	// L1Delta is Σ_i |Δcount_i|: the net per-vertex change actually
	// applied, the natural convergence signal (≈ 0 at the fixed point).
	L1Delta float64
}

// Vertices returns the observed strings sorted ascending (testing/debug).
func (g *StateGraph) Vertices() []bitstring.BitString {
	out := make([]bitstring.BitString, len(g.nodes))
	for i, nd := range g.nodes {
		out[i] = nd.value
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
