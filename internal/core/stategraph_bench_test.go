package core

import (
	"fmt"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
)

// benchGraphConfigs spans the regimes the figure corpus hits: moderate
// and large vertex counts, tight and loose Poisson radii.
var benchGraphConfigs = []struct {
	v      int
	lambda float64
}{
	{512, 1},
	{4096, 1},
	{4096, 2},
}

// benchGraphDist draws v distinct outcomes uniformly over 16 qubits —
// the widest weight spread, i.e. the least favorable case for the
// popcount-bucket window.
func benchGraphDist(v int) *bitstring.Dist {
	const n = 16
	rng := mathx.NewRNG(97)
	d := bitstring.NewDist(n)
	for d.Support() < v {
		d.Add(bitstring.BitString(rng.Intn(1<<n)), float64(rng.Intn(20)+1))
	}
	return d
}

// BenchmarkBuildStateGraph measures the shipped edge-discovery engine
// (bucketed / ball-walk, see edgescan.go). Compare with
// BenchmarkBuildStateGraphBrute for the speedup over the seed's O(V²)
// scan.
func BenchmarkBuildStateGraph(b *testing.B) {
	for _, c := range benchGraphConfigs {
		b.Run(fmt.Sprintf("V%d/lambda%g", c.v, c.lambda), func(b *testing.B) {
			benchBuild(b, benchGraphDist(c.v), c.lambda)
		})
	}
	// The million-vertex track: V=10⁵ and V=10⁶ corpora through the
	// partition-sharded discovery engine (the ROADMAP scaling row).
	for _, c := range benchScaleConfigs {
		b.Run(c.name, func(b *testing.B) {
			benchBuild(b, benchScaleDist(c.n, c.v), c.lambda)
		})
	}
}

func benchBuild(b *testing.B, raw *bitstring.Dist, lambda float64) {
	b.ReportAllocs()
	b.ResetTimer()
	var edges int
	for i := 0; i < b.N; i++ {
		g, err := BuildStateGraph(raw, PoissonEdges{Lambda: lambda}, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		edges = g.NumEdges()
	}
	b.ReportMetric(float64(edges), "edges")
}

// BenchmarkBuildStateGraphBrute is the seed's serial O(V²) pairwise scan
// (bruteScanEdges), the reference the acceptance criterion compares
// against.
func BenchmarkBuildStateGraphBrute(b *testing.B) {
	for _, c := range benchGraphConfigs {
		b.Run(fmt.Sprintf("V%d/lambda%g", c.v, c.lambda), func(b *testing.B) {
			raw := benchGraphDist(c.v)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := buildStateGraphBrute(raw, PoissonEdges{Lambda: c.lambda}, 0.05); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchScaleConfigs are the million-vertex-track corpora: register
// widths chosen so the requested support fits with realistic density
// (V=10⁵ at n=20 is ~10% of the value space, V=10⁶ at n=26 ~1.5%), λ
// chosen so the effective radius stays in sphere-walk territory.
var benchScaleConfigs = []struct {
	name   string
	n, v   int
	lambda float64
}{
	{"V1e5", 20, 1e5, 1},
	{"V1e6", 26, 1e6, 0.8},
}

// benchScaleDist draws v distinct outcomes uniformly over n qubits.
func benchScaleDist(n, v int) *bitstring.Dist {
	rng := mathx.NewRNG(97)
	d := bitstring.NewDistCap(n, v)
	for d.Support() < v {
		d.Add(bitstring.BitString(rng.Uint64()&(1<<uint(n)-1)), float64(rng.Intn(20)+1))
	}
	return d
}

// BenchmarkMitigate is the end-to-end row (graph build + 20 flow
// iterations + snapshot) at scale. The V1e5_topk8 variant runs the same
// corpus through the approximate mode; its quotient against V1e5 is the
// mitigate_topk_speedup_v1e5 ratio bench-gate tracks. V1e6 additionally
// gates an absolute wall-clock budget (mitigate_v1e6_seconds) — the
// "mitigable in seconds" acceptance criterion.
func BenchmarkMitigate(b *testing.B) {
	cases := []struct {
		name   string
		n, v   int
		lambda float64
		topK   int
	}{
		{"V1e5", 20, 1e5, 1, 0},
		{"V1e5_topk8", 20, 1e5, 1, 8},
		{"V1e6", 26, 1e6, 0.8, 0},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			raw := benchScaleDist(c.n, c.v)
			opts := NewOptions()
			opts.TopK = c.topK
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Mitigate(raw, c.lambda, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStateGraphStep measures one reclassification iteration on a
// warm graph; allocs/op must report 0 (scratch reuse, pinned by
// TestStepAllocationFree).
func BenchmarkStateGraphStep(b *testing.B) {
	for _, c := range benchGraphConfigs {
		b.Run(fmt.Sprintf("V%d/lambda%g", c.v, c.lambda), func(b *testing.B) {
			raw := benchGraphDist(c.v)
			g, err := BuildStateGraph(raw, PoissonEdges{Lambda: c.lambda}, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			g.Step(1) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Step(0.5)
			}
		})
	}
}
