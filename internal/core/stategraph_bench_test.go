package core

import (
	"fmt"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
)

// benchGraphConfigs spans the regimes the figure corpus hits: moderate
// and large vertex counts, tight and loose Poisson radii.
var benchGraphConfigs = []struct {
	v      int
	lambda float64
}{
	{512, 1},
	{4096, 1},
	{4096, 2},
}

// benchGraphDist draws v distinct outcomes uniformly over 16 qubits —
// the widest weight spread, i.e. the least favorable case for the
// popcount-bucket window.
func benchGraphDist(v int) *bitstring.Dist {
	const n = 16
	rng := mathx.NewRNG(97)
	d := bitstring.NewDist(n)
	for d.Support() < v {
		d.Add(bitstring.BitString(rng.Intn(1<<n)), float64(rng.Intn(20)+1))
	}
	return d
}

// BenchmarkBuildStateGraph measures the shipped edge-discovery engine
// (bucketed / ball-walk, see edgescan.go). Compare with
// BenchmarkBuildStateGraphBrute for the speedup over the seed's O(V²)
// scan.
func BenchmarkBuildStateGraph(b *testing.B) {
	for _, c := range benchGraphConfigs {
		b.Run(fmt.Sprintf("V%d/lambda%g", c.v, c.lambda), func(b *testing.B) {
			raw := benchGraphDist(c.v)
			b.ReportAllocs()
			b.ResetTimer()
			var edges int
			for i := 0; i < b.N; i++ {
				g, err := BuildStateGraph(raw, PoissonEdges{Lambda: c.lambda}, 0.05)
				if err != nil {
					b.Fatal(err)
				}
				edges = g.NumEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkBuildStateGraphBrute is the seed's serial O(V²) pairwise scan
// (bruteScanEdges), the reference the acceptance criterion compares
// against.
func BenchmarkBuildStateGraphBrute(b *testing.B) {
	for _, c := range benchGraphConfigs {
		b.Run(fmt.Sprintf("V%d/lambda%g", c.v, c.lambda), func(b *testing.B) {
			raw := benchGraphDist(c.v)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := buildStateGraphBrute(raw, PoissonEdges{Lambda: c.lambda}, 0.05); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStateGraphStep measures one reclassification iteration on a
// warm graph; allocs/op must report 0 (scratch reuse, pinned by
// TestStepAllocationFree).
func BenchmarkStateGraphStep(b *testing.B) {
	for _, c := range benchGraphConfigs {
		b.Run(fmt.Sprintf("V%d/lambda%g", c.v, c.lambda), func(b *testing.B) {
			raw := benchGraphDist(c.v)
			g, err := BuildStateGraph(raw, PoissonEdges{Lambda: c.lambda}, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			g.Step(1) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Step(0.5)
			}
		})
	}
}
