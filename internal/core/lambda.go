// Package core implements the paper's contribution: the pre-induction
// Poisson model of Hamming-spectrum errors (Eq. 2), the Bayesian-network
// state graph over observed bit-strings (Eq. 4), and the iterative
// count-reflow mitigation algorithm (Algorithm 1).
package core

import (
	"context"
	"fmt"
	"math"

	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/obs"
	"qbeep/internal/transpile"
)

// LambdaBreakdown itemizes Eq. 2's terms:
//
//	λ = Σ_q (1 - e^(-t/T1_q)) + Σ_q (1 - e^(-t/T2_q)) + Σ_g σ_g·U_count(g)
//
// where the sums over q run over the physical qubits carrying logical data,
// t is the scheduled end-to-end circuit time, σ_g the calibrated infidelity
// of each basis-gate application, and U_count(g) the post-transpilation
// gate counts. The paper's n_Q(1-e^(-t/T)) form assumes homogeneous qubits;
// we keep the per-qubit sum, which reduces to it for uniform calibration.
type LambdaBreakdown struct {
	T1    float64 // relaxation term
	T2    float64 // dephasing term
	Gates float64 // Σ σ_ij · U_count
	Time  float64 // t_circuit (seconds)
}

// Lambda returns the combined rate.
func (b LambdaBreakdown) Lambda() float64 { return b.T1 + b.T2 + b.Gates }

// EstimateLambda evaluates Eq. 2 for a transpiled circuit on a backend.
// It is computed strictly pre-induction: only the transpiled circuit, the
// schedule time and the calibration snapshot are consulted — never the
// measured results.
func EstimateLambda(res *transpile.Result, b *device.Backend) (LambdaBreakdown, error) {
	if res == nil || res.Circuit == nil {
		return LambdaBreakdown{}, fmt.Errorf("core: nil transpile result")
	}
	if b == nil || b.Calibration == nil {
		return LambdaBreakdown{}, fmt.Errorf("core: nil backend")
	}
	var out LambdaBreakdown
	out.Time = res.Time
	for _, p := range res.Final {
		if p < 0 || p >= len(b.Calibration.Qubits) {
			return LambdaBreakdown{}, fmt.Errorf("core: layout qubit %d outside calibration", p)
		}
		q := b.Calibration.Qubits[p]
		out.T1 += 1 - math.Exp(-res.Time/q.T1)
		out.T2 += 1 - math.Exp(-res.Time/q.T2)
	}
	for _, g := range res.Circuit.Gates {
		if !g.Kind.IsUnitary() {
			continue
		}
		switch len(g.Qubits) {
		case 1:
			q := g.Qubits[0]
			if q < len(b.Calibration.Gates1Q) {
				out.Gates += b.Calibration.Gates1Q[q].Error
			}
		case 2:
			if gc, ok := b.Calibration.Gate2Q(g.Qubits[0], g.Qubits[1]); ok {
				out.Gates += gc.Error
			}
		}
	}
	// Every estimation path (CLI, simulator, experiments) funnels through
	// here, so this is the one site that keeps the per-backend λ gauge
	// current — calibration drift between snapshots shows up on /metrics
	// as qbeep_quality_lambda{backend=...} moving.
	if b.Name != "" {
		obs.Default.LabeledGauge("quality.lambda", "backend", b.Name).Set(out.Lambda())
	}
	return out, nil
}

// EstimateLambdaFor transpiles the logical circuit onto the backend and
// evaluates Eq. 2 — the one-call convenience used by examples and the CLI.
func EstimateLambdaFor(c *circuit.Circuit, b *device.Backend) (LambdaBreakdown, *transpile.Result, error) {
	return EstimateLambdaForCtx(context.Background(), c, b)
}

// EstimateLambdaForCtx is EstimateLambdaFor with trace-context
// propagation: the "transpile" span parents under the span active in ctx.
func EstimateLambdaForCtx(ctx context.Context, c *circuit.Circuit, b *device.Backend) (LambdaBreakdown, *transpile.Result, error) {
	res, err := transpile.TranspileCtx(ctx, c, b, nil)
	if err != nil {
		return LambdaBreakdown{}, nil, err
	}
	lb, err := EstimateLambda(res, b)
	if err != nil {
		return LambdaBreakdown{}, nil, err
	}
	return lb, res, nil
}
