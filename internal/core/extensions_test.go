package core

import (
	"math"
	"testing"

	"qbeep/internal/algorithms"
	"qbeep/internal/bitstring"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/noise"
)

// poissonCounts synthesizes a clustered noisy distribution around truth.
func poissonCounts(n int, truth bitstring.BitString, lambda float64, shots int, seed uint64) *bitstring.Dist {
	rng := mathx.NewRNG(seed)
	pois := mathx.Poisson{Lambda: lambda}
	d := bitstring.NewDist(n)
	for i := 0; i < shots; i++ {
		v := truth
		k := pois.Sample(rng.Float64)
		for j := 0; j < k; j++ {
			v = v.FlipBit(rng.Intn(n))
		}
		d.Add(v, 1)
	}
	return d
}

func TestMitigateEnsembleValidation(t *testing.T) {
	if _, err := MitigateEnsemble(nil, NewOptions()); err == nil {
		t.Error("empty ensemble should error")
	}
	good := poissonCounts(4, 0b1010, 0.8, 500, 1)
	if _, err := MitigateEnsemble([]EnsembleMember{
		{Counts: good, Lambda: 0.8},
		{Counts: bitstring.NewDist(4), Lambda: 0.8},
	}, NewOptions()); err == nil {
		t.Error("empty member should error")
	}
	other := poissonCounts(5, 0b01010, 0.8, 500, 2)
	if _, err := MitigateEnsemble([]EnsembleMember{
		{Counts: good, Lambda: 0.8},
		{Counts: other, Lambda: 0.8},
	}, NewOptions()); err == nil {
		t.Error("width mismatch should error")
	}
	if _, err := MitigateEnsemble([]EnsembleMember{
		{Counts: good, Lambda: -1},
	}, NewOptions()); err == nil {
		t.Error("negative lambda should error")
	}
}

func TestMitigateEnsembleWeighsCleanMembers(t *testing.T) {
	const n = 6
	truth := bitstring.BitString(0b101101)
	ideal := bitstring.NewDist(n)
	ideal.Add(truth, 1)
	clean := poissonCounts(n, truth, 0.4, 2000, 3)
	dirty := poissonCounts(n, truth, 3.5, 2000, 4)

	merged, err := MitigateEnsemble([]EnsembleMember{
		{Counts: clean, Lambda: 0.4},
		{Counts: dirty, Lambda: 3.5},
	}, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The ensemble must beat the dirty member alone and sit at or above
	// the naive unweighted average of the two mitigated members.
	dirtyOnly, err := Mitigate(dirty, 3.5, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bitstring.Fidelity(ideal, merged) <= bitstring.Fidelity(ideal, dirtyOnly) {
		t.Errorf("ensemble (%v) should beat the dirty member alone (%v)",
			bitstring.Fidelity(ideal, merged), bitstring.Fidelity(ideal, dirtyOnly))
	}
	if math.Abs(merged.Total()-2000) > 1e-6 {
		t.Errorf("ensemble total %v should equal the mean member total", merged.Total())
	}
}

func TestMitigateEnsembleSingleMemberMatchesMitigate(t *testing.T) {
	raw := poissonCounts(5, 0b10110, 1.0, 1500, 5)
	solo, err := Mitigate(raw, 1.0, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	ens, err := MitigateEnsemble([]EnsembleMember{{Counts: raw, Lambda: 1.0}}, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bitstring.TVD(solo, ens) > 1e-9 {
		t.Errorf("single-member ensemble diverged: TVD %v", bitstring.TVD(solo, ens))
	}
}

func TestFitProbeCalibrator(t *testing.T) {
	// Realized EHD is consistently 1.5× the estimate: α̂ should be 1.5.
	probes := []ProbeResult{
		{EstimatedLambda: 0.5, RealizedEHD: 0.75},
		{EstimatedLambda: 1.0, RealizedEHD: 1.50},
		{EstimatedLambda: 2.0, RealizedEHD: 3.00},
	}
	cal, err := FitProbeCalibrator(probes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.Alpha-1.5) > 1e-9 {
		t.Errorf("alpha = %v want 1.5", cal.Alpha)
	}
	if cal.Probes != 3 {
		t.Errorf("probes = %d", cal.Probes)
	}
	if got := cal.Correct(LambdaBreakdown{Gates: 2}); math.Abs(got-3) > 1e-9 {
		t.Errorf("Correct = %v", got)
	}
	before, after := cal.Quality(probes)
	if after >= before {
		t.Errorf("calibration should reduce probe RMSE: %v -> %v", before, after)
	}
}

func TestFitProbeCalibratorErrors(t *testing.T) {
	if _, err := FitProbeCalibrator(nil); err == nil {
		t.Error("no probes should error")
	}
	if _, err := FitProbeCalibrator([]ProbeResult{{EstimatedLambda: 1, RealizedEHD: 1}}); err == nil {
		t.Error("single probe should error")
	}
	if _, err := FitProbeCalibrator([]ProbeResult{
		{EstimatedLambda: 0, RealizedEHD: 1},
		{EstimatedLambda: -1, RealizedEHD: 1},
	}); err == nil {
		t.Error("no usable probes should error")
	}
	if _, err := FitProbeCalibrator([]ProbeResult{
		{EstimatedLambda: 1, RealizedEHD: 0},
		{EstimatedLambda: 2, RealizedEHD: 0},
	}); err == nil {
		t.Error("zero-EHD probes give degenerate alpha and should error")
	}
}

func TestProbeCalibrationImprovesLambdaOnExecutor(t *testing.T) {
	// End-to-end: RB probes on a backend fit α; the corrected λ must be
	// closer to the realized EHD of a held-out circuit than the raw Eq. 2
	// estimate is.
	b, err := device.ByName("medellin")
	if err != nil {
		t.Fatal(err)
	}
	exec, err := noise.NewExecutor(b, noise.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(31)
	var probes []ProbeResult
	for i := 0; i < 6; i++ {
		w, err := algorithms.RandomizedBenchmarking(6, 1+i, rng)
		if err != nil {
			t.Fatal(err)
		}
		run, err := exec.Execute(w.Circuit, 2048, rng)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateLambda(run.Transpiled, b)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := w.MarginalCounts(run.Counts)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := ProbeResultFrom(est, counts, w.Expected)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, pr)
	}
	cal, err := FitProbeCalibrator(probes)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out workloads from the same family and depth regime (see the
	// ProbeCalibrator doc: the correction transfers within a family).
	// Averaged over several holdouts so a single lucky raw estimate
	// cannot dominate.
	var rawErr, corErr float64
	for i := 0; i < 5; i++ {
		w, err := algorithms.RandomizedBenchmarking(6, 2+i, rng)
		if err != nil {
			t.Fatal(err)
		}
		run, err := exec.Execute(w.Circuit, 4096, rng)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateLambda(run.Transpiled, b)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := w.MarginalCounts(run.Counts)
		if err != nil {
			t.Fatal(err)
		}
		realized := counts.ExpectedHamming(w.Expected)
		rawErr += math.Abs(est.Lambda() - realized)
		corErr += math.Abs(cal.Correct(est) - realized)
	}
	if corErr >= rawErr {
		t.Errorf("probe calibration did not help: raw Σ|Δλ|=%v corrected=%v (alpha %v)",
			rawErr, corErr, cal.Alpha)
	}
}

func TestProbeResultFromEmpty(t *testing.T) {
	if _, err := ProbeResultFrom(LambdaBreakdown{}, bitstring.NewDist(3), 0); err == nil {
		t.Error("empty counts should error")
	}
}
