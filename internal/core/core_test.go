package core

import (
	"math"
	"testing"
	"testing/quick"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/transpile"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testTranspiled(t *testing.T) (*transpile.Result, *device.Backend) {
	t.Helper()
	b, err := device.ByName("eldorado")
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("ghz", 5).H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4).MeasureAll()
	res, err := transpile.Transpile(c, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, b
}

func TestEstimateLambdaPositive(t *testing.T) {
	res, b := testTranspiled(t)
	lb, err := EstimateLambda(res, b)
	if err != nil {
		t.Fatal(err)
	}
	if lb.T1 <= 0 || lb.T2 <= 0 || lb.Gates <= 0 {
		t.Errorf("all terms should be positive: %+v", lb)
	}
	if lb.Lambda() != lb.T1+lb.T2+lb.Gates {
		t.Error("Lambda should sum the terms")
	}
	if lb.Time != res.Time {
		t.Error("Time should echo the schedule")
	}
}

func TestEstimateLambdaErrors(t *testing.T) {
	_, b := testTranspiled(t)
	if _, err := EstimateLambda(nil, b); err == nil {
		t.Error("nil result should error")
	}
	res, _ := testTranspiled(t)
	if _, err := EstimateLambda(res, nil); err == nil {
		t.Error("nil backend should error")
	}
}

func TestEstimateLambdaGrowsWithDepth(t *testing.T) {
	b, _ := device.ByName("eldorado")
	shallow := circuit.New("s", 4).H(0).CX(0, 1)
	deep := circuit.New("d", 4)
	for i := 0; i < 20; i++ {
		deep.H(0).CX(0, 1).CX(1, 2).CX(2, 3)
	}
	lbS, _, err := EstimateLambdaFor(shallow, b)
	if err != nil {
		t.Fatal(err)
	}
	lbD, _, err := EstimateLambdaFor(deep, b)
	if err != nil {
		t.Fatal(err)
	}
	if lbD.Lambda() <= lbS.Lambda() {
		t.Errorf("λ should grow with depth: %v vs %v", lbD.Lambda(), lbS.Lambda())
	}
}

func TestEstimateLambdaWorseMachineHigher(t *testing.T) {
	good, _ := device.ByName("galway")  // quality 0.7
	bad, _ := device.ByName("nairobi2") // quality 1.8
	c := circuit.New("chain", 5).H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4)
	lbG, _, err := EstimateLambdaFor(c, good)
	if err != nil {
		t.Fatal(err)
	}
	lbB, _, err := EstimateLambdaFor(c, bad)
	if err != nil {
		t.Fatal(err)
	}
	if lbB.Gates <= lbG.Gates {
		t.Errorf("worse machine should have higher gate term: %v vs %v", lbB.Gates, lbG.Gates)
	}
}

func TestPoissonEdgesWeighting(t *testing.T) {
	p := PoissonEdges{Lambda: 2}
	if !approx(p.Weight(2), mathx.Poisson{Lambda: 2}.PMF(2), 1e-15) {
		t.Error("weight should be the Poisson pmf")
	}
	if r := p.MaxRadius(0.05, 4); r > 4 {
		t.Errorf("radius %d should clamp to register width", r)
	}
}

func TestInverseDistanceEdges(t *testing.T) {
	w := InverseDistanceEdges{}
	if w.Weight(1) != 0.5 || w.Weight(2) != 0.25 {
		t.Errorf("weights: %v %v", w.Weight(1), w.Weight(2))
	}
	if w.Weight(-1) != 0 {
		t.Error("negative distance should weigh 0")
	}
	if w.Weight(3) != 0 {
		t.Error("default MaxD=2 should zero the third shell")
	}
	if r := w.MaxRadius(0.05, 10); r != 3 {
		t.Errorf("radius = %d want 3 (first zero-weight shell)", r)
	}
	wide := InverseDistanceEdges{MaxD: 6}
	if wide.Weight(3) != 0.125 {
		t.Errorf("MaxD=6 Weight(3) = %v", wide.Weight(3))
	}
}

func TestBuildStateGraphValidation(t *testing.T) {
	if _, err := BuildStateGraph(nil, PoissonEdges{Lambda: 1}, 0.05); err == nil {
		t.Error("nil counts should error")
	}
	d := bitstring.NewDist(3)
	if _, err := BuildStateGraph(d, PoissonEdges{Lambda: 1}, 0.05); err == nil {
		t.Error("empty counts should error")
	}
	d.Add(0, 1)
	if _, err := BuildStateGraph(d, PoissonEdges{Lambda: 1}, 0); err == nil {
		t.Error("zero epsilon should error")
	}
	if _, err := BuildStateGraph(d, nil, 0.05); err == nil {
		t.Error("nil weighter should error")
	}
}

func TestStateGraphEdges(t *testing.T) {
	// Three observed strings: 000 (dominant), 001 (distance 1), 111
	// (distance 3 from 000, 2 from 001).
	d := bitstring.NewDist(3)
	d.Add(0b000, 90)
	d.Add(0b001, 8)
	d.Add(0b111, 2)
	g, err := BuildStateGraph(d, PoissonEdges{Lambda: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Errorf("vertices %d", g.NumVertices())
	}
	// Poisson(1): PMF(1)=.368, PMF(2)=.184, PMF(3)=.061 — all above 0.05,
	// so the graph is complete on 3 vertices.
	if g.NumEdges() != 3 {
		t.Errorf("edges %d want 3", g.NumEdges())
	}
	// With a tighter threshold the distance-3 edge drops.
	g2, _ := BuildStateGraph(d, PoissonEdges{Lambda: 1}, 0.1)
	if g2.NumEdges() != 2 {
		t.Errorf("edges %d want 2 at eps=0.1", g2.NumEdges())
	}
}

func TestStepMovesMassTowardDominant(t *testing.T) {
	d := bitstring.NewDist(4)
	d.Add(0b0000, 600)
	d.Add(0b0001, 100)
	d.Add(0b0010, 100)
	d.Add(0b0100, 100)
	d.Add(0b1000, 100)
	g, err := BuildStateGraph(d, PoissonEdges{Lambda: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	before := g.Dist().Prob(0)
	g.Step(1)
	after := g.Dist().Prob(0)
	if after <= before {
		t.Errorf("dominant mass should grow: %v -> %v", before, after)
	}
}

func TestStepPreservesNonNegativity(t *testing.T) {
	f := func(c0, c1, c2 uint8, etaRaw uint8) bool {
		d := bitstring.NewDist(3)
		d.Add(0b000, float64(c0)+1)
		d.Add(0b001, float64(c1))
		d.Add(0b011, float64(c2))
		g, err := BuildStateGraph(d, PoissonEdges{Lambda: 1.5}, 0.05)
		if err != nil {
			return false
		}
		eta := float64(etaRaw%10)/10 + 0.1
		for i := 0; i < 5; i++ {
			g.Step(eta)
		}
		out := g.Dist()
		ok := true
		out.Each(func(_ bitstring.BitString, cnt float64) {
			if cnt < 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMitigateImprovesBVStyleCounts(t *testing.T) {
	// Synthetic BV-like counts: true answer 10110, errors Poisson-clustered
	// at distance ~1.5 around it.
	const n = 5
	truth := bitstring.BitString(0b10110)
	rng := mathx.NewRNG(17)
	raw := bitstring.NewDist(n)
	pois := mathx.Poisson{Lambda: 1.2}
	for shot := 0; shot < 2000; shot++ {
		v := truth
		k := pois.Sample(rng.Float64)
		for i := 0; i < k; i++ {
			v = v.FlipBit(rng.Intn(n))
		}
		raw.Add(v, 1)
	}
	ideal := bitstring.NewDist(n)
	ideal.Add(truth, 1)

	before := bitstring.Fidelity(ideal, raw)
	out, err := Mitigate(raw, 1.2, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	after := bitstring.Fidelity(ideal, out)
	if after <= before {
		t.Errorf("mitigation should improve fidelity: %v -> %v", before, after)
	}
	if !approx(out.Total(), raw.Total(), 1e-6) {
		t.Errorf("total mass changed: %v -> %v", raw.Total(), out.Total())
	}
}

func TestMitigateTrackedTrace(t *testing.T) {
	raw := bitstring.NewDist(3)
	raw.Add(0b000, 50)
	raw.Add(0b001, 20)
	raw.Add(0b010, 20)
	raw.Add(0b111, 10)
	ideal := bitstring.NewDist(3)
	ideal.Add(0b000, 1)
	opts := NewOptions()
	out, trace, err := MitigateTracked(raw, 1, opts, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != opts.Iterations+1 {
		t.Fatalf("trace length %d want %d", len(trace), opts.Iterations+1)
	}
	if trace[len(trace)-1] < trace[0] {
		t.Errorf("final fidelity %v below initial %v", trace[len(trace)-1], trace[0])
	}
	if !approx(bitstring.Fidelity(ideal, out), trace[len(trace)-1], 1e-9) {
		t.Error("final trace entry should match output fidelity")
	}
	if _, _, err := MitigateTracked(raw, 1, opts, nil); err == nil {
		t.Error("nil ideal should error")
	}
}

func TestMitigateValidation(t *testing.T) {
	raw := bitstring.NewDist(3)
	raw.Add(0, 10)
	if _, err := Mitigate(raw, -1, NewOptions()); err == nil {
		t.Error("negative lambda should error")
	}
	bad := NewOptions()
	bad.Iterations = 0
	if _, err := Mitigate(raw, 1, bad); err == nil {
		t.Error("zero iterations should error")
	}
	bad = NewOptions()
	bad.Epsilon = 1.5
	if _, err := Mitigate(raw, 1, bad); err == nil {
		t.Error("bad epsilon should error")
	}
	bad = NewOptions()
	bad.ConvergeTol = -0.01
	if _, err := Mitigate(raw, 1, bad); err == nil {
		t.Error("negative converge tolerance should error")
	}
	bad = NewOptions()
	bad.ConvergeTol = math.NaN()
	if _, err := Mitigate(raw, 1, bad); err == nil {
		t.Error("NaN converge tolerance should error")
	}
	bad = NewOptions()
	bad.TopK = -3
	if _, err := Mitigate(raw, 1, bad); err == nil {
		t.Error("negative top-k should error")
	}
	ok := NewOptions()
	ok.ConvergeTol = 0
	ok.TopK = 0
	if _, err := Mitigate(raw, 1, ok); err != nil {
		t.Errorf("zero converge tolerance and top-k are the exact defaults: %v", err)
	}
	if _, err := Mitigate(bitstring.NewDist(3), 1, NewOptions()); err == nil {
		t.Error("empty counts should error")
	}
}

func TestMitigateSingleOutcomeIsStable(t *testing.T) {
	raw := bitstring.NewDist(4)
	raw.Add(0b1010, 100)
	out, err := Mitigate(raw, 1, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(out.Prob(0b1010), 1, 1e-12) {
		t.Errorf("single outcome should persist: %v", out.StringCounts())
	}
}

func TestMitigateZeroLambdaNoEdges(t *testing.T) {
	// λ=0 ⇒ point mass at distance 0 ⇒ no edges ⇒ identity mitigation.
	raw := bitstring.NewDist(3)
	raw.Add(0b000, 60)
	raw.Add(0b001, 40)
	out, err := Mitigate(raw, 0, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bitstring.TVD(raw, out) > 1e-12 {
		t.Errorf("λ=0 should be identity: %v", out.StringCounts())
	}
}

func TestMitigateHAMMERWeighterAblation(t *testing.T) {
	// Error cluster centered at distance 3 — HAMMER-style local weights
	// cannot reach it, Poisson(3) can.
	const n = 8
	truth := bitstring.BitString(0b10110100)
	raw := bitstring.NewDist(n)
	raw.Add(truth, 300)
	// Error mass concentrated on a shell at distance 3.
	rng := mathx.NewRNG(5)
	for i := 0; i < 700; i++ {
		v := truth
		flipped := map[int]bool{}
		for len(flipped) < 3 {
			q := rng.Intn(n)
			if !flipped[q] {
				flipped[q] = true
				v = v.FlipBit(q)
			}
		}
		raw.Add(v, 1)
	}
	ideal := bitstring.NewDist(n)
	ideal.Add(truth, 1)

	opts := NewOptions()
	poisOut, err := Mitigate(raw, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Weighter = InverseDistanceEdges{}
	hammerOut, err := Mitigate(raw, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	fp := bitstring.Fidelity(ideal, poisOut)
	fh := bitstring.Fidelity(ideal, hammerOut)
	if fp <= fh {
		t.Errorf("Poisson edges should beat local weights on distant clusters: %v vs %v", fp, fh)
	}
}

func TestGraphScalesWithEpsilon(t *testing.T) {
	rng := mathx.NewRNG(23)
	raw := bitstring.NewDist(10)
	for i := 0; i < 400; i++ {
		raw.Add(bitstring.BitString(rng.Intn(1024)), 1)
	}
	loose, err := BuildStateGraph(raw, PoissonEdges{Lambda: 2}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := BuildStateGraph(raw, PoissonEdges{Lambda: 2}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if tight.NumEdges() >= loose.NumEdges() {
		t.Errorf("tighter epsilon should prune edges: %d vs %d",
			tight.NumEdges(), loose.NumEdges())
	}
}

func BenchmarkMitigate4096Shots10Q(b *testing.B) {
	rng := mathx.NewRNG(1)
	raw := bitstring.NewDist(10)
	truth := bitstring.BitString(0b1011010010)
	pois := mathx.Poisson{Lambda: 1.5}
	for i := 0; i < 4096; i++ {
		v := truth
		k := pois.Sample(rng.Float64)
		for j := 0; j < k; j++ {
			v = v.FlipBit(rng.Intn(10))
		}
		raw.Add(v, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mitigate(raw, 1.5, NewOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
