package core

import (
	"fmt"
	"math"

	"qbeep/internal/bitstring"
	"qbeep/internal/par"
)

// EnsembleMember is one induction of the same logical circuit — typically
// on a different backend or with a different layout — with its own
// pre-induction λ estimate.
type EnsembleMember struct {
	Counts *bitstring.Dist
	Lambda float64
}

// MitigateEnsemble applies Q-BEEP to each member and merges the mitigated
// distributions with quality weights w_i = e^(-λ_i): members whose model
// predicts fewer failure events contribute more. This implements the
// composition the paper sketches in §3.5 (Quancorde-style ensembles
// "enhance the baseline fidelity … thereby amplifying the benefits of
// Q-BEEP"): the ensemble raises the weight of cleaner inductions, Q-BEEP
// cleans each one first.
//
// The returned distribution is normalized to the mean member total, so it
// remains comparable to a single induction's counts.
func MitigateEnsemble(members []EnsembleMember, opts Options) (*bitstring.Dist, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: empty ensemble")
	}
	width := members[0].Counts.Width()
	var meanTotal float64
	for i, m := range members {
		if m.Counts == nil || m.Counts.Support() == 0 {
			return nil, fmt.Errorf("core: ensemble member %d has no counts", i)
		}
		if m.Counts.Width() != width {
			return nil, fmt.Errorf("core: ensemble member %d width %d vs %d", i, m.Counts.Width(), width)
		}
		if m.Lambda < 0 {
			return nil, fmt.Errorf("core: ensemble member %d negative lambda", i)
		}
		meanTotal += m.Counts.Total()
	}
	meanTotal /= float64(len(members))

	// Members are independent mitigations: fan them out and merge in
	// member order, so the result is identical to a serial loop
	// regardless of GOMAXPROCS.
	mitigated := make([]*bitstring.Dist, len(members))
	if err := par.ForEach(len(members), 0, func(i int) error {
		out, err := Mitigate(members[i].Counts, members[i].Lambda, opts)
		if err != nil {
			return fmt.Errorf("core: ensemble member %d: %w", i, err)
		}
		mitigated[i] = out
		return nil
	}); err != nil {
		return nil, err
	}
	merged := bitstring.NewDist(width)
	var weightSum float64
	for i, m := range members {
		w := math.Exp(-m.Lambda)
		weightSum += w
		norm := mitigated[i].Normalized(1)
		norm.Each(func(v bitstring.BitString, p float64) {
			merged.Add(v, w*p)
		})
	}
	if weightSum <= 0 || merged.Total() == 0 {
		return nil, fmt.Errorf("core: ensemble weights vanished")
	}
	return merged.Normalized(meanTotal), nil
}
