package core

// Edge discovery for the state graph. BuildStateGraph's pair scan is the
// innermost loop of the whole pipeline — it runs once per mitigation,
// thousands of times per figure corpus — so it gets an engine of its own:
//
//   - a per-distance weight table, so the scan performs two array loads
//     per candidate pair instead of an interface call into the model
//     (a Poisson PMF) plus a binomial coefficient;
//   - popcount bucketing: |wt(a)−wt(b)| ≤ Hamming(a,b), and the distance
//     parity is pinned to (wt(a)+wt(b)) mod 2, so only buckets whose
//     minimum achievable distance is within the model radius are scanned;
//   - a Hamming-ball walk for small radii on narrow registers: enumerate
//     the C(n, 1..r) strings around each vertex with incremental XOR and
//     probe a direct-indexed value→vertex table, making discovery
//     O(V·C(n,≤r)) — near-linear in V for the radii ε = 0.05 induces;
//   - a parallel scan over vertex ranges (internal/par) with per-range
//     buffers. Every vertex emits its neighbors b > a sorted ascending,
//     ranges are concatenated in range order, so the edge array comes out
//     in canonical ascending (a, b) order — bit-for-bit identical to the
//     serial O(V²) scan for any strategy and any worker count.
//
// The seed's serial scan survives below as bruteScanEdges: the randomized
// equivalence tests use it as the oracle, and BenchmarkBuildStateGraphBrute
// measures the engine against it.

import (
	"context"
	"math"
	"runtime"
	"slices"

	"qbeep/internal/bitstring"
	"qbeep/internal/par"
)

// scanStrategy selects the edge-discovery algorithm. scanAuto picks by
// estimated probe counts; the equivalence tests force each path.
type scanStrategy int

const (
	scanAuto scanStrategy = iota
	// scanBucket scans vertex pairs from popcount buckets within radius.
	scanBucket
	// scanSphere walks the Hamming ball around each vertex and probes a
	// direct-indexed value table. Requires n <= sphereLUTMaxWidth.
	scanSphere
	// scanNone is reported when the graph cannot have edges (radius 0 or
	// fewer than two vertices).
	scanNone
)

func (s scanStrategy) String() string {
	switch s {
	case scanBucket:
		return "bucket"
	case scanSphere:
		return "sphere"
	case scanNone:
		return "none"
	default:
		return "auto"
	}
}

// sphereLUTMaxWidth caps the direct-indexed value→vertex table of the
// ball-walk strategy at 2^20 entries (4 MiB).
const sphereLUTMaxWidth = 20

// scanSerialThreshold: scans expected to probe fewer candidates than this
// stay on one goroutine — fan-out overhead would dominate the work.
const scanSerialThreshold = 1 << 12

// weightTable precomputes the per-distance edge data once per build.
// perString[d] is the stored edge weight w(d)/C(n,d) for shells whose
// model mass passes ε, and 0 for shells inside the radius that fail the
// threshold (those candidates count as pruned). Index 0 is unused:
// vertices are distinct outcomes, so pair distances are >= 1.
type weightTable struct {
	perString []float64
}

func newWeightTable(w EdgeWeighter, eps float64, n, radius int) weightTable {
	t := weightTable{perString: make([]float64, radius+1)}
	for d := 1; d <= radius && d <= n; d++ {
		if shell := w.Weight(d); shell >= eps {
			t.perString[d] = shell / float64(bitstring.SphereSize(n, d))
		}
	}
	return t
}

// effectiveRadius returns the largest distance whose shell passes the ε
// threshold — the true scan bound. The model's MaxRadius is a tail
// cutoff, so its boundary shell always fails ε and scanning it can only
// prune; dropping dead boundary shells shrinks the Hamming ball (and the
// bucket window) substantially: one 16-qubit shell is C(16,4) = 1820 of
// a 2517-string ball.
func (t weightTable) effectiveRadius() int {
	for d := len(t.perString) - 1; d >= 1; d-- {
		if t.perString[d] != 0 {
			return d
		}
	}
	return 0
}

// edgeScanner is the shared read-only state of one edge-discovery run.
type edgeScanner struct {
	vals   []bitstring.BitString // node values in node-index (ascending) order
	n      int
	radius int
	tab    weightTable

	buckets [][]int32 // popcount -> node indices, ascending
	hitEst  float64   // expected edges per vertex (uniform-corpus estimate)
	// Sphere strategy only. seen is a presence bitmap probed before lut:
	// at 2^n bits it stays L1-resident (8 KiB at n = 16) where the int32
	// lut does not, and the overwhelming majority of ball probes miss —
	// the bitmap answers those without touching the big table.
	seen []uint64
	lut  []int32 // value -> node index + 1
	// masks[t] holds the ball deltas whose top set bit is t, packed
	// delta<<8 | distance, precomputed once per scan. The per-vertex walk
	// visits only the groups whose top bit is clear in the vertex value:
	// those are exactly the deltas with v^delta > v, i.e. the neighbors
	// with a higher node index (values ascend with index), so half the
	// ball is skipped outright and the symmetric b > a filter costs
	// nothing per probe. Across visited groups the probed values ascend
	// (higher top bit ⇒ larger u), so only within-group hits need sorting.
	masks [][]uint64
}

// ballMasks enumerates every nonzero string with popcount <= radius over
// n bits, packed delta<<8 | popcount and grouped by top set bit. Runs
// once per scan; the per-vertex hot loop just XORs these into the vertex
// value.
func ballMasks(n, radius int) [][]uint64 {
	masks := make([][]uint64, n)
	var rec func(delta uint64, top, start, depth int)
	rec = func(delta uint64, top, start, depth int) {
		for i := start; i < top; i++ {
			u := delta | 1<<uint(i)
			masks[top] = append(masks[top], u<<8|uint64(depth))
			if depth < radius {
				rec(u, top, i+1, depth+1)
			}
		}
	}
	for t := 0; t < n; t++ {
		masks[t] = append(masks[t], (1<<uint(t))<<8|1)
		if radius > 1 {
			rec(1<<uint(t), t, 0, 2)
		}
	}
	return masks
}

// scanResult is one vertex range's share of the discovery output. Hits
// stay packed (8 bytes each) until every range is done and the final edge
// slice can be allocated at its exact size — appending edge structs
// directly would triple the growth-copy traffic.
type scanResult struct {
	hits   []uint64 // packed b<<8 | d, one ascending run per vertex
	starts []int32  // vertex (relative to range start) -> offset into hits
	pruned int
}

// scanEdges discovers every thresholded edge. The returned slice is in
// canonical ascending (a, b) order regardless of strategy or worker
// count; pruned counts candidate pairs within the radius dropped by ε,
// matching the serial scan's accounting exactly. deg holds vertex i's
// degree at index i+1 — tallied while the edges materialize, so buildCSR
// can skip its counting pass.
func scanEdges(ctx context.Context, vals []bitstring.BitString, n, radius int, tab weightTable, workers int, strat scanStrategy) (edges []edge, deg []int32, pruned int, used scanStrategy) {
	nV := len(vals)
	if radius <= 0 || nV < 2 {
		return nil, make([]int32, nV+1), 0, scanNone
	}
	sc := &edgeScanner{vals: vals, n: n, radius: radius, tab: tab}
	sc.buckets = make([][]int32, n+1)
	wcount := make([]int32, n+1)
	for _, v := range vals {
		wcount[v.Weight()]++
	}
	for w, c := range wcount {
		if c > 0 {
			sc.buckets[w] = make([]int32, 0, c)
		}
	}
	for i, v := range vals {
		w := v.Weight()
		sc.buckets[w] = append(sc.buckets[w], int32(i))
	}

	// Candidate estimates drive both the strategy choice and the
	// serial-vs-parallel decision.
	var bucketCand int64
	for wa := 0; wa <= n; wa++ {
		la := int64(len(sc.buckets[wa]))
		if la == 0 {
			continue
		}
		for wb := wa; wb <= n && wb-wa <= radius; wb++ {
			if wb == wa {
				if radius >= 2 { // same-weight pairs differ in >= 2 bits
					bucketCand += la * (la - 1) / 2
				}
				continue
			}
			bucketCand += la * int64(len(sc.buckets[wb]))
		}
	}
	var ballSize int64
	for d := 1; d <= radius && d <= n; d++ {
		ballSize += int64(bitstring.SphereSize(n, d))
	}
	// Expected hits per vertex under a uniform corpus — presizes the hit
	// buffers so discovery appends rarely reallocate. Clustered corpora
	// exceed it and fall back to append growth.
	sc.hitEst = 0.5 * float64(ballSize) * math.Ldexp(float64(nV), -n)
	if strat == scanAuto {
		strat = scanBucket
		// The walk probes half the ball per vertex (top-bit grouping), and
		// a probe — XOR plus one L1-resident bitmap load — costs about half
		// a bucket candidate (random value fetch plus popcount).
		if n <= sphereLUTMaxWidth && int64(nV)*ballSize/2 < 2*bucketCand {
			strat = scanSphere
		}
	} else if strat == scanSphere && n > sphereLUTMaxWidth {
		strat = scanBucket
	}
	cand := bucketCand
	if strat == scanSphere {
		cand = int64(nV) * ballSize / 2
		sc.lut = make([]int32, 1<<uint(n))
		sc.seen = make([]uint64, (1<<uint(n)+63)/64)
		for i, v := range vals {
			sc.lut[v] = int32(i) + 1
			sc.seen[v>>6] |= 1 << (v & 63)
		}
		sc.masks = ballMasks(n, radius)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cand < scanSerialThreshold {
		workers = 1
	}
	chunks := 1
	if workers > 1 {
		// Over-decompose so the dynamic queue balances the triangular
		// workload (vertex a scans only neighbors b > a).
		chunks = workers * 8
		if chunks > nV {
			chunks = nV
		}
	}
	results := make([]scanResult, chunks)
	run := func(ci int) error {
		lo := ci * nV / chunks
		hi := (ci + 1) * nV / chunks
		results[ci] = sc.scanRange(lo, hi, strat)
		return nil
	}
	if chunks == 1 {
		run(0)
	} else {
		par.ForEachCtx(ctx, chunks, workers, run)
	}

	var total int
	for i := range results {
		total += len(results[i].hits)
		pruned += results[i].pruned
	}
	tabPS := tab.perString
	edges = make([]edge, 0, total)
	deg = make([]int32, nV+1)
	for ci := range results {
		r := &results[ci]
		lo := ci * nV / chunks
		for k := 0; k+1 < len(r.starts); k++ {
			a := lo + k
			run := r.hits[r.starts[k]:r.starts[k+1]]
			deg[a+1] += int32(len(run))
			for _, p := range run {
				b := int(p >> 8)
				deg[b+1]++
				edges = append(edges, edge{a: a, b: b, weight: tabPS[p&0xff]})
			}
		}
	}
	return edges, deg, pruned, strat
}

// scanRange emits the edges (a, b) with a in [lo, hi) and b > a, each
// vertex's neighbors sorted ascending, so concatenating ranges in order
// reproduces the canonical serial-scan edge order.
func (sc *edgeScanner) scanRange(lo, hi int, strat scanStrategy) scanResult {
	res := scanResult{starts: make([]int32, 1, hi-lo+1)}
	hitCap := int(sc.hitEst*float64(hi-lo)*1.2) + 64
	hits := make([]uint64, 0, hitCap) // packed b<<8 | d, one sorted run per vertex
	// Hoist the scanner fields: the appends below keep the compiler from
	// proving the fields loop-invariant, and these are the two hottest
	// loops in the pipeline.
	vals, tab, radius := sc.vals, sc.tab.perString, sc.radius
	if strat == scanSphere {
		seen, lut, masks := sc.seen, sc.lut, sc.masks
		// len(seen) is always a power of two (2^max(0,n-6)), so masking
		// the word index proves it in-bounds and drops the bounds check
		// from the innermost load.
		wmask := bitstring.BitString(len(seen) - 1)
		for a := lo; a < hi; a++ {
			va := vals[a]
			for t, group := range masks {
				if va&(1<<uint(t)) != 0 {
					continue // v^delta < v: the lower-index side owns the pair
				}
				seg := len(hits)
				// Unrolled by two: the bitmap loads of a pair are
				// independent, so they overlap instead of serializing on
				// L1 latency. Hits are rare; both taken branches stay in
				// probe order, preserving the canonical emission order.
				i := 0
				for ; i+2 <= len(group); i += 2 {
					m0, m1 := group[i], group[i+1]
					u0 := va ^ bitstring.BitString(m0>>8)
					u1 := va ^ bitstring.BitString(m1>>8)
					h0 := seen[(u0>>6)&wmask] & (1 << (u0 & 63))
					h1 := seen[(u1>>6)&wmask] & (1 << (u1 & 63))
					if h0 != 0 {
						// Observed, and u > va guarantees index lut[u]-1 > a.
						if d := m0 & 0xff; tab[d] != 0 {
							hits = append(hits, uint64(lut[u0]-1)<<8|d)
						} else {
							res.pruned++
						}
					}
					if h1 != 0 {
						if d := m1 & 0xff; tab[d] != 0 {
							hits = append(hits, uint64(lut[u1]-1)<<8|d)
						} else {
							res.pruned++
						}
					}
				}
				if i < len(group) {
					m := group[i]
					u := va ^ bitstring.BitString(m>>8)
					if seen[(u>>6)&wmask]&(1<<(u&63)) != 0 {
						if d := m & 0xff; tab[d] != 0 {
							hits = append(hits, uint64(lut[u]-1)<<8|d)
						} else {
							res.pruned++
						}
					}
				}
				sortPacked(hits[seg:])
			}
			res.starts = append(res.starts, int32(len(hits)))
		}
		res.hits = hits
		return res
	}
	// Per-bucket cursors to the first node index > a. Vertices are
	// processed in ascending index order, so each cursor only moves
	// forward — amortized O(bucket) per range instead of a binary search
	// per (vertex, bucket) visit.
	cur := make([]int32, len(sc.buckets))
	for a := lo; a < hi; a++ {
		va := vals[a]
		wa := va.Weight()
		loW := wa - radius
		if loW < 0 {
			loW = 0
		}
		hiW := wa + radius
		if hiW > sc.n {
			hiW = sc.n
		}
		seg := len(hits)
		for wb := loW; wb <= hiW; wb++ {
			if wb == wa && radius < 2 {
				continue // same-weight distances are even and >= 2
			}
			bk := sc.buckets[wb]
			c := int(cur[wb])
			for c < len(bk) && int(bk[c]) <= a {
				c++
			}
			cur[wb] = int32(c)
			for _, j := range bk[c:] {
				d := bitstring.Hamming(va, vals[j])
				if d > radius {
					continue
				}
				if tab[d] == 0 {
					res.pruned++
					continue
				}
				hits = append(hits, uint64(j)<<8|uint64(d))
			}
		}
		if len(hits)-seg > 24 {
			slices.Sort(hits[seg:])
		} else {
			sortPacked(hits[seg:])
		}
		res.starts = append(res.starts, int32(len(hits)))
	}
	res.hits = hits
	return res
}

// sortPacked is an insertion sort for the short per-vertex (sphere: per
// top-bit-group) hit runs — a handful of elements each, where a generic
// sort's dispatch overhead would exceed the work.
func sortPacked(s []uint64) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// bruteScanEdges is the seed's serial O(V²) pairwise scan, kept verbatim
// as the reference implementation. It deliberately re-derives every
// per-pair quantity through the EdgeWeighter the way the original code
// did, so it stays an independent oracle for the engine above.
func bruteScanEdges(vals []bitstring.BitString, n, radius int, w EdgeWeighter, eps float64) ([]edge, int) {
	var edges []edge
	var pruned int
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			d := bitstring.Hamming(vals[i], vals[j])
			if d > radius {
				continue
			}
			wt := w.Weight(d)
			if wt < eps {
				pruned++
				continue
			}
			edges = append(edges, edge{a: i, b: j, weight: wt / float64(bitstring.SphereSize(n, d))})
		}
	}
	return edges, pruned
}
