package core

// Edge discovery for the state graph. BuildStateGraph's pair scan is the
// innermost loop of the whole pipeline — it runs once per mitigation,
// thousands of times per figure corpus — so it gets an engine of its own:
//
//   - a per-distance weight table, so the scan performs two array loads
//     per candidate pair instead of an interface call into the model
//     (a Poisson PMF) plus a binomial coefficient;
//   - popcount bucketing: |wt(a)−wt(b)| ≤ Hamming(a,b), and the distance
//     parity is pinned to (wt(a)+wt(b)) mod 2, so only buckets whose
//     minimum achievable distance is within the model radius are scanned;
//   - a Hamming-ball walk for small radii: enumerate the C(n, 1..r)
//     strings around each vertex with incremental XOR and probe a
//     presence bitmap, making discovery O(V·C(n,≤r)) — near-linear in V
//     for the radii ε = 0.05 induces. Narrow registers resolve confirmed
//     hits through a direct value→vertex table; wide ones (up to
//     sphereMaxWidth) binary-search the sorted value slice instead, so
//     million-vertex corpora at n = 26 stay on the near-linear path;
//   - two-level sharding across internal/par workers: level 1 partitions
//     the vertex set along data boundaries (top-bit groups for the
//     sphere walk, popcount-histogram work quantiles for the bucket
//     scan), level 2 splits heavy partitions into contiguous scan
//     ranges. Workers drain tasks with per-worker packed-hit scratch,
//     and per-task edge lists merge in ascending task order, so the edge
//     array comes out in canonical ascending (a, b) order — bit-for-bit
//     identical to the serial O(V²) scan for any strategy, any
//     partitioning, and any worker count.
//
// The seed's serial scan survives below as bruteScanEdges: the randomized
// equivalence tests use it as the oracle, and BenchmarkBuildStateGraphBrute
// measures the engine against it.

import (
	"context"
	"math"
	"math/bits"
	"runtime"
	"slices"

	"qbeep/internal/bitstring"
	"qbeep/internal/par"
)

// scanStrategy selects the edge-discovery algorithm. scanAuto picks by
// estimated probe counts; the equivalence tests force each path.
type scanStrategy int

const (
	scanAuto scanStrategy = iota
	// scanBucket scans vertex pairs from popcount buckets within radius.
	scanBucket
	// scanSphere walks the Hamming ball around each vertex and probes a
	// presence bitmap. Requires n <= sphereMaxWidth.
	scanSphere
	// scanNone is reported when the graph cannot have edges (radius 0 or
	// fewer than two vertices).
	scanNone
)

func (s scanStrategy) String() string {
	switch s {
	case scanBucket:
		return "bucket"
	case scanSphere:
		return "sphere"
	case scanNone:
		return "none"
	default:
		return "auto"
	}
}

// sphereLUTMaxWidth caps the direct-indexed value→vertex table of the
// ball-walk strategy at 2^20 entries (4 MiB).
const sphereLUTMaxWidth = 20

// sphereMaxWidth caps the ball-walk strategy itself. Past the LUT width
// the presence bitmap (2^n bits — 32 MiB at n = 28) still answers the
// overwhelmingly-common miss in one load; only confirmed hits pay a
// binary search over the sorted value slice for their vertex index.
const sphereMaxWidth = 28

// scanSerialThreshold: scans expected to probe fewer candidates than this
// stay on one goroutine — fan-out overhead would dominate the work.
const scanSerialThreshold = 1 << 12

// weightTable precomputes the per-distance edge data once per build.
// perString[d] is the stored edge weight w(d)/C(n,d) for shells whose
// model mass passes ε, and 0 for shells inside the radius that fail the
// threshold (those candidates count as pruned). Index 0 is unused:
// vertices are distinct outcomes, so pair distances are >= 1.
type weightTable struct {
	perString []float64
}

func newWeightTable(w EdgeWeighter, eps float64, n, radius int) weightTable {
	t := weightTable{perString: make([]float64, radius+1)}
	for d := 1; d <= radius && d <= n; d++ {
		if shell := w.Weight(d); shell >= eps {
			t.perString[d] = shell / float64(bitstring.SphereSize(n, d))
		}
	}
	return t
}

// effectiveRadius returns the largest distance whose shell passes the ε
// threshold — the true scan bound. The model's MaxRadius is a tail
// cutoff, so its boundary shell always fails ε and scanning it can only
// prune; dropping dead boundary shells shrinks the Hamming ball (and the
// bucket window) substantially: one 16-qubit shell is C(16,4) = 1820 of
// a 2517-string ball.
func (t weightTable) effectiveRadius() int {
	for d := len(t.perString) - 1; d >= 1; d-- {
		if t.perString[d] != 0 {
			return d
		}
	}
	return 0
}

// edgeScanner is the shared read-only state of one edge-discovery run.
type edgeScanner struct {
	vals   []bitstring.BitString // node values in node-index (ascending) order
	n      int
	radius int
	tab    weightTable

	// Flat popcount buckets (counting-sort layout): bucket w's node
	// indices, ascending, are bucketIdx[bucketStart[w]:bucketStart[w+1]].
	// One histogram pass plus two fixed slices replaces the per-bucket
	// slice-of-slices, and the histogram doubles as the pre-sizing source
	// for the scan scratch below.
	bucketStart []int32 // len n+2
	bucketIdx   []int32 // len nV
	hitEst      float64 // expected edges per vertex (uniform-corpus estimate)
	// Sphere strategy only. seen is a presence bitmap probed on every
	// ball position: at 2^n bits it stays L1-resident (8 KiB at n = 16)
	// where an index table does not, and the overwhelming majority of
	// ball probes miss — the bitmap answers those without touching
	// anything bigger.
	seen []uint64
	// lut resolves a confirmed hit to its node index + 1 on narrow
	// registers (n <= sphereLUTMaxWidth); nil past that width, where hits
	// binary-search vals instead.
	lut []int32
	// masks[t] holds the ball deltas whose top set bit is t, packed
	// delta<<8 | distance, precomputed once per scan. The per-vertex walk
	// visits only the groups whose top bit is clear in the vertex value:
	// those are exactly the deltas with v^delta > v, i.e. the neighbors
	// with a higher node index (values ascend with index), so half the
	// ball is skipped outright and the symmetric b > a filter costs
	// nothing per probe. Across visited groups the probed values ascend
	// (higher top bit ⇒ larger u), so only within-group hits need sorting.
	masks [][]uint64
}

// bucket returns popcount bucket w's node indices, ascending.
func (sc *edgeScanner) bucket(w int) []int32 {
	return sc.bucketIdx[sc.bucketStart[w]:sc.bucketStart[w+1]]
}

// ballMasks enumerates every nonzero string with popcount <= radius over
// n bits, packed delta<<8 | popcount and grouped by top set bit. Group
// sizes are known in closed form (top bit t contributes Σ_{d≤r} C(t,d−1)
// deltas), so all groups share one exactly-sized arena — two allocations
// total instead of O(n·log group) append growth. Runs once per scan; the
// per-vertex hot loop just XORs these into the vertex value.
func ballMasks(n, radius int) [][]uint64 {
	total := 0
	for t := 0; t < n; t++ {
		c := 1 // C(t, d-1), starting at d = 1
		for d := 1; d <= radius; d++ {
			total += c
			if d <= t {
				c = c * (t - d + 1) / d
			} else {
				c = 0
			}
		}
	}
	arena := make([]uint64, 0, total)
	masks := make([][]uint64, n)
	var rec func(delta uint64, top, start, depth int)
	rec = func(delta uint64, top, start, depth int) {
		for i := start; i < top; i++ {
			u := delta | 1<<uint(i)
			arena = append(arena, u<<8|uint64(depth))
			if depth < radius {
				rec(u, top, i+1, depth+1)
			}
		}
	}
	for t := 0; t < n; t++ {
		base := len(arena)
		arena = append(arena, (1<<uint(t))<<8|1)
		if radius > 1 {
			rec(1<<uint(t), t, 0, 2)
		}
		masks[t] = arena[base:len(arena):len(arena)]
	}
	return masks
}

// scanTask is one unit of parallel edge discovery: a contiguous vertex
// range inside one level-1 partition. Tasks are planned in ascending
// vertex order, so merging per-task results in task order reproduces the
// canonical serial edge order.
type scanTask struct {
	lo, hi int
}

// scanScratch is one worker's reusable discovery state: the packed-hit
// buffer and (bucket strategy) the per-bucket forward cursors. Scratches
// cycle through a buffered-channel pool, so a worker draining many tasks
// allocates only the exact-size per-task hit copies after warm-up.
//
//qbeep:pooled
type scanScratch struct {
	hits []uint64
	cur  []int32
}

// scanResult is one task's share of the discovery output. Hits stay
// packed (8 bytes each) until every task is done and the final edge
// slice can be allocated at its exact size — appending edge structs
// directly would triple the growth-copy traffic.
type scanResult struct {
	hits   []uint64 // packed b<<8 | d, one ascending run per vertex
	starts []int32  // vertex (relative to task lo) -> offset into hits
	pruned int
}

// planScanTasks builds the two-level decomposition of [0, nV). Level 1
// partitions the vertex set along data boundaries: the sphere walk cuts
// at top-bit-group edges (values ascend with node index, so each group
// is contiguous), the bucket scan at popcount-histogram work quantiles.
// Level 2 splits partitions whose estimated share of the scan exceeds an
// even grain into contiguous sub-ranges, so the par queue can balance
// skewed partitions. Every task stays in ascending vertex order, which
// keeps the ordered merge canonical for any worker count.
func (sc *edgeScanner) planScanTasks(strat scanStrategy, workers int) []scanTask {
	nV := len(sc.vals)
	if workers <= 1 || nV < 2 {
		return []scanTask{{0, nV}}
	}
	// Over-decompose so the dynamic queue balances the triangular
	// workload (vertex a scans only neighbors b > a).
	target := workers * 8
	if target > 64 {
		target = 64
	}
	if target > nV {
		target = nV
	}

	var parts []scanTask
	var workPrefix []float64
	if strat == scanSphere {
		lo := 0
		for i := 1; i <= nV; i++ {
			if i == nV || bits.Len64(uint64(sc.vals[i])) != bits.Len64(uint64(sc.vals[lo])) {
				parts = append(parts, scanTask{lo, i})
				lo = i
			}
		}
	} else {
		// A bucket-scan vertex's candidate count is its popcount window's
		// total occupancy, so the prefix sum of per-vertex window sizes
		// cuts equal-work partitions no matter how skewed the weight
		// histogram is.
		win := make([]float64, sc.n+1)
		for w := 0; w <= sc.n; w++ {
			lo := w - sc.radius
			if lo < 0 {
				lo = 0
			}
			hi := w + sc.radius
			if hi > sc.n {
				hi = sc.n
			}
			win[w] = float64(sc.bucketStart[hi+1] - sc.bucketStart[lo])
		}
		workPrefix = make([]float64, nV+1)
		for i, v := range sc.vals {
			workPrefix[i+1] = workPrefix[i] + win[v.Weight()]
		}
		nParts := workers
		if nParts > 8 {
			nParts = 8
		}
		if nParts > nV {
			nParts = nV
		}
		parts = cutByWork(workPrefix, 0, nV, nParts)
	}

	totalWork := float64(nV)
	if workPrefix != nil {
		totalWork = workPrefix[nV]
	}
	grain := totalWork / float64(target)
	tasks := make([]scanTask, 0, target+len(parts))
	for _, p := range parts {
		pw := float64(p.hi - p.lo)
		if workPrefix != nil {
			pw = workPrefix[p.hi] - workPrefix[p.lo]
		}
		k := 1
		if grain > 0 {
			k = int(pw/grain + 0.5)
		}
		if k < 1 {
			k = 1
		}
		if k > p.hi-p.lo {
			k = p.hi - p.lo
		}
		switch {
		case k == 1:
			tasks = append(tasks, p)
		case workPrefix != nil:
			tasks = append(tasks, cutByWork(workPrefix, p.lo, p.hi, k)...)
		default:
			for i := 0; i < k; i++ {
				tasks = append(tasks, scanTask{p.lo + i*(p.hi-p.lo)/k, p.lo + (i+1)*(p.hi-p.lo)/k})
			}
		}
	}
	return tasks
}

// cutByWork splits [lo, hi) into at most k contiguous ranges of
// near-equal work under the prefix-sum weighting: boundaries are the
// work quantiles, found by binary search; ranges that would come out
// empty are skipped.
func cutByWork(prefix []float64, lo, hi, k int) []scanTask {
	out := make([]scanTask, 0, k)
	base, span := prefix[lo], prefix[hi]-prefix[lo]
	cur := lo
	for i := 1; i <= k && cur < hi; i++ {
		cut := hi
		if i < k {
			q := base + span*float64(i)/float64(k)
			l, h := cur, hi
			for l < h {
				mid := int(uint(l+h) >> 1)
				if prefix[mid] < q {
					l = mid + 1
				} else {
					h = mid
				}
			}
			cut = l
		}
		if cut <= cur {
			continue
		}
		out = append(out, scanTask{cur, cut})
		cur = cut
	}
	if cur < hi {
		out = append(out, scanTask{cur, hi})
	}
	return out
}

// scanEdges discovers every thresholded edge. The returned slice is in
// canonical ascending (a, b) order regardless of strategy, partitioning,
// or worker count; pruned counts candidate pairs within the radius
// dropped by ε, matching the serial scan's accounting exactly. deg holds
// vertex i's degree at index i+1 — tallied while the edges materialize,
// so buildCSR can skip its counting pass.
func scanEdges(ctx context.Context, vals []bitstring.BitString, n, radius int, tab weightTable, workers int, strat scanStrategy) (edges []edge, deg []int32, pruned int, used scanStrategy) {
	nV := len(vals)
	if radius <= 0 || nV < 2 {
		return nil, make([]int32, nV+1), 0, scanNone
	}
	sc := &edgeScanner{vals: vals, n: n, radius: radius, tab: tab}
	// Flat buckets by counting sort: the histogram prefix sum is the
	// bucket boundary array, and scanning vals in index order keeps each
	// bucket's node indices ascending.
	hist := make([]int32, n+2)
	for _, v := range vals {
		hist[v.Weight()+1]++
	}
	for w := 0; w <= n; w++ {
		hist[w+1] += hist[w]
	}
	sc.bucketStart = hist
	sc.bucketIdx = make([]int32, nV)
	fill := make([]int32, n+1)
	copy(fill, hist[:n+1])
	for i, v := range vals {
		w := v.Weight()
		sc.bucketIdx[fill[w]] = int32(i)
		fill[w]++
	}

	// Candidate estimates drive both the strategy choice and the
	// serial-vs-parallel decision.
	var bucketCand int64
	for wa := 0; wa <= n; wa++ {
		la := int64(len(sc.bucket(wa)))
		if la == 0 {
			continue
		}
		for wb := wa; wb <= n && wb-wa <= radius; wb++ {
			if wb == wa {
				if radius >= 2 { // same-weight pairs differ in >= 2 bits
					bucketCand += la * (la - 1) / 2
				}
				continue
			}
			bucketCand += la * int64(len(sc.bucket(wb)))
		}
	}
	var ballSize int64
	for d := 1; d <= radius && d <= n; d++ {
		ballSize += int64(bitstring.SphereSize(n, d))
	}
	// Expected hits per vertex under a uniform corpus — presizes the hit
	// buffers so discovery appends rarely reallocate. Clustered corpora
	// exceed it and fall back to append growth.
	sc.hitEst = 0.5 * float64(ballSize) * math.Ldexp(float64(nV), -n)
	if strat == scanAuto {
		strat = scanBucket
		if n <= sphereLUTMaxWidth && int64(nV)*ballSize/2 < 2*bucketCand {
			// The walk probes half the ball per vertex (top-bit grouping),
			// and a probe — XOR plus one L1-resident bitmap load — costs
			// about half a bucket candidate (random value fetch plus
			// popcount).
			strat = scanSphere
		} else if n > sphereLUTMaxWidth && n <= sphereMaxWidth && int64(nV)*ballSize/2 < bucketCand {
			// Wide registers: the bitmap spills L1, so a probe costs
			// about one bucket candidate.
			strat = scanSphere
		}
	} else if strat == scanSphere && n > sphereMaxWidth {
		strat = scanBucket
	}
	cand := bucketCand
	if strat == scanSphere {
		cand = int64(nV) * ballSize / 2
		sc.seen = make([]uint64, (1<<uint(n)+63)/64)
		if n <= sphereLUTMaxWidth {
			sc.lut = make([]int32, 1<<uint(n))
			for i, v := range vals {
				sc.lut[v] = int32(i) + 1
				sc.seen[v>>6] |= 1 << (v & 63)
			}
		} else {
			for _, v := range vals {
				sc.seen[v>>6] |= 1 << (v & 63)
			}
		}
		sc.masks = ballMasks(n, radius)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cand < scanSerialThreshold {
		workers = 1
	}
	tasks := sc.planScanTasks(strat, workers)

	results := make([]scanResult, len(tasks))
	// One shared arena holds every task's starts window (task length
	// plus the leading zero each), cut along precomputed offsets.
	startsArena := make([]int32, nV+len(tasks))
	offs := make([]int, len(tasks))
	maxVerts, off := 0, 0
	for i, t := range tasks {
		offs[i] = off
		off += t.hi - t.lo + 1
		if t.hi-t.lo > maxVerts {
			maxVerts = t.hi - t.lo
		}
	}
	hitCap := int(sc.hitEst*float64(maxVerts)*1.2) + 64

	if len(tasks) == 1 {
		// Serial fast path: scan straight into the result, no copy.
		s := &scanScratch{hits: make([]uint64, 0, hitCap)}
		starts := startsArena[:nV+1]
		pr := sc.scanRange(tasks[0], strat, s, starts)
		results[0] = scanResult{hits: s.hits, starts: starts, pruned: pr} //qbeep:allow-poolretain serial path: the scratch is function-local, never pooled, and dies with this frame
	} else {
		pool := make(chan *scanScratch, workers)
		for i := 0; i < workers; i++ {
			pool <- &scanScratch{hits: make([]uint64, 0, hitCap)}
		}
		par.ForEachCtx(ctx, len(tasks), workers, func(ti int) error {
			t := tasks[ti]
			s := <-pool
			s.hits = s.hits[:0]
			starts := startsArena[offs[ti] : offs[ti]+t.hi-t.lo+1]
			pr := sc.scanRange(t, strat, s, starts)
			hits := make([]uint64, len(s.hits))
			copy(hits, s.hits)
			results[ti] = scanResult{hits: hits, starts: starts, pruned: pr}
			pool <- s
			return nil
		})
	}

	var total int
	for i := range results {
		total += len(results[i].hits)
		pruned += results[i].pruned
	}
	tabPS := tab.perString
	edges = make([]edge, 0, total)
	deg = make([]int32, nV+1)
	for ti := range results {
		r := &results[ti]
		lo := tasks[ti].lo
		for k := 0; k+1 < len(r.starts); k++ {
			a := lo + k
			run := r.hits[r.starts[k]:r.starts[k+1]]
			deg[a+1] += int32(len(run))
			for _, p := range run {
				b := int(p >> 8)
				deg[b+1]++
				edges = append(edges, edge{a: a, b: b, weight: tabPS[p&0xff]})
			}
		}
	}
	return edges, deg, pruned, strat
}

// scanRange emits the edges (a, b) with a in the task's range and b > a,
// each vertex's neighbors sorted ascending, into the scratch hit buffer
// (s.hits, reset by the caller). starts must span hi-lo+1 entries; on
// return starts[k] is the hit offset of vertex lo+k. Returns the pruned
// count.
func (sc *edgeScanner) scanRange(t scanTask, strat scanStrategy, s *scanScratch, starts []int32) int {
	lo, hi := t.lo, t.hi
	pruned := 0
	hits := s.hits
	starts[0] = 0
	// Hoist the scanner fields: the appends below keep the compiler from
	// proving the fields loop-invariant, and these are the two hottest
	// loops in the pipeline.
	vals, tab, radius := sc.vals, sc.tab.perString, sc.radius
	if strat == scanSphere {
		seen, lut, masks := sc.seen, sc.lut, sc.masks
		// idxOf resolves a confirmed hit to its node index: direct table
		// on narrow registers, binary search over the ascending value
		// slice past the LUT width. Only hits pay it — the bitmap has
		// already answered every miss.
		idxOf := func(u bitstring.BitString) uint64 {
			if lut != nil {
				return uint64(lut[u] - 1)
			}
			l, h := 0, len(vals)
			for l < h {
				mid := int(uint(l+h) >> 1)
				if vals[mid] < u {
					l = mid + 1
				} else {
					h = mid
				}
			}
			return uint64(l)
		}
		// len(seen) is always a power of two (2^max(0,n-6)), so masking
		// the word index proves it in-bounds and drops the bounds check
		// from the innermost load.
		wmask := bitstring.BitString(len(seen) - 1)
		for a := lo; a < hi; a++ {
			va := vals[a]
			for t, group := range masks {
				if va&(1<<uint(t)) != 0 {
					continue // v^delta < v: the lower-index side owns the pair
				}
				seg := len(hits)
				// Unrolled by two: the bitmap loads of a pair are
				// independent, so they overlap instead of serializing on
				// L1 latency. Hits are rare; both taken branches stay in
				// probe order, preserving the canonical emission order.
				i := 0
				for ; i+2 <= len(group); i += 2 {
					m0, m1 := group[i], group[i+1]
					u0 := va ^ bitstring.BitString(m0>>8)
					u1 := va ^ bitstring.BitString(m1>>8)
					h0 := seen[(u0>>6)&wmask] & (1 << (u0 & 63))
					h1 := seen[(u1>>6)&wmask] & (1 << (u1 & 63))
					if h0 != 0 {
						// Observed, and u > va guarantees index idxOf(u) > a.
						if d := m0 & 0xff; tab[d] != 0 {
							hits = append(hits, idxOf(u0)<<8|d)
						} else {
							pruned++
						}
					}
					if h1 != 0 {
						if d := m1 & 0xff; tab[d] != 0 {
							hits = append(hits, idxOf(u1)<<8|d)
						} else {
							pruned++
						}
					}
				}
				if i < len(group) {
					m := group[i]
					u := va ^ bitstring.BitString(m>>8)
					if seen[(u>>6)&wmask]&(1<<(u&63)) != 0 {
						if d := m & 0xff; tab[d] != 0 {
							hits = append(hits, idxOf(u)<<8|d)
						} else {
							pruned++
						}
					}
				}
				sortPacked(hits[seg:])
			}
			starts[a-lo+1] = int32(len(hits))
		}
		s.hits = hits
		return pruned
	}
	// Per-bucket cursors to the first node index > a, seeded from the
	// bucket boundaries and reset per task. Vertices are processed in
	// ascending index order, so each cursor only moves forward —
	// amortized O(bucket) per task instead of a binary search per
	// (vertex, bucket) visit.
	if cap(s.cur) < sc.n+1 {
		s.cur = make([]int32, sc.n+1)
	}
	s.cur = s.cur[:sc.n+1]
	copy(s.cur, sc.bucketStart[:sc.n+1])
	cur := s.cur
	bucketIdx, bucketStart := sc.bucketIdx, sc.bucketStart
	for a := lo; a < hi; a++ {
		va := vals[a]
		wa := va.Weight()
		loW := wa - radius
		if loW < 0 {
			loW = 0
		}
		hiW := wa + radius
		if hiW > sc.n {
			hiW = sc.n
		}
		seg := len(hits)
		for wb := loW; wb <= hiW; wb++ {
			if wb == wa && radius < 2 {
				continue // same-weight distances are even and >= 2
			}
			end := int(bucketStart[wb+1])
			c := int(cur[wb])
			for c < end && int(bucketIdx[c]) <= a {
				c++
			}
			cur[wb] = int32(c)
			for _, j := range bucketIdx[c:end] {
				d := bitstring.Hamming(va, vals[j])
				if d > radius {
					continue
				}
				if tab[d] == 0 {
					pruned++
					continue
				}
				hits = append(hits, uint64(j)<<8|uint64(d))
			}
		}
		if len(hits)-seg > 24 {
			slices.Sort(hits[seg:])
		} else {
			sortPacked(hits[seg:])
		}
		starts[a-lo+1] = int32(len(hits))
	}
	s.hits = hits
	return pruned
}

// sortPacked is an insertion sort for the short per-vertex (sphere: per
// top-bit-group) hit runs — a handful of elements each, where a generic
// sort's dispatch overhead would exceed the work.
//
//qbeep:mustinline
//qbeep:allocfree
func sortPacked(s []uint64) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// bruteScanEdges is the seed's serial O(V²) pairwise scan, kept verbatim
// as the reference implementation. It deliberately re-derives every
// per-pair quantity through the EdgeWeighter the way the original code
// did, so it stays an independent oracle for the engine above.
func bruteScanEdges(vals []bitstring.BitString, n, radius int, w EdgeWeighter, eps float64) ([]edge, int) {
	var edges []edge
	var pruned int
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			d := bitstring.Hamming(vals[i], vals[j])
			if d > radius {
				continue
			}
			wt := w.Weight(d)
			if wt < eps {
				pruned++
				continue
			}
			edges = append(edges, edge{a: i, b: j, weight: wt / float64(bitstring.SphereSize(n, d))})
		}
	}
	return edges, pruned
}
