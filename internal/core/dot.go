package core

import (
	"fmt"
	"io"
	"sort"

	"qbeep/internal/bitstring"
)

// WriteDOT renders the state graph in Graphviz DOT format: vertices are
// observed bit-strings labeled with their (current) counts, scaled by
// probability; edges carry the per-string model weight. Visualizing a
// graph before and after Step calls is the quickest way to see where
// counts flowed — the right panel of the paper's Fig. 5.
//
// maxEdges caps the rendered edges (heaviest first; 0 = no cap) so large
// graphs stay viewable.
func (g *StateGraph) WriteDOT(w io.Writer, maxEdges int) error {
	if _, err := fmt.Fprintf(w, "graph stategraph {\n  layout=neato;\n  node [shape=circle];\n"); err != nil {
		return err
	}
	total := g.total
	if total <= 0 {
		total = 1
	}
	for i, nd := range g.nodes {
		label := bitstring.Format(nd.value, g.n)
		size := 0.4 + 2*nd.count/total
		if _, err := fmt.Fprintf(w,
			"  n%d [label=\"%s\\n%.0f\", width=%.2f, fixedsize=true];\n",
			i, label, nd.count, size); err != nil {
			return err
		}
	}
	edges := append([]edge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].weight > edges[j].weight })
	if maxEdges > 0 && len(edges) > maxEdges {
		edges = edges[:maxEdges]
	}
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "  n%d -- n%d [label=\"%.2g\"];\n", e.a, e.b, e.weight); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Stats summarizes a built state graph for logging and the CLI.
type Stats struct {
	Vertices int
	Edges    int
	// PrunedEdges counts candidate pairs inside the scan radius whose
	// weight fell below the ε threshold — the mass the scalability rule
	// dropped (ISSUE: graph size under ε = 0.05). The scan stops at the
	// effective radius (largest shell passing ε), so dead tail shells
	// beyond it are neither scanned nor counted here.
	PrunedEdges int
	// Radius is the effective radius: the largest Hamming distance an
	// edge can span after thresholding.
	Radius int
	Total  float64
}

// Stats returns the graph's summary statistics.
func (g *StateGraph) Stats() Stats {
	return Stats{
		Vertices:    len(g.nodes),
		Edges:       len(g.edges),
		PrunedEdges: g.pruned,
		Radius:      g.radius,
		Total:       g.total,
	}
}

// String implements fmt.Stringer for quick logging.
func (s Stats) String() string {
	return fmt.Sprintf("state graph: %d vertices, %d edges (%d pruned), radius %d, mass %.0f",
		s.Vertices, s.Edges, s.PrunedEdges, s.Radius, s.Total)
}
