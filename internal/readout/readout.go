// Package readout implements measurement-error mitigation by tensored
// confusion-matrix inversion — the standard SPAM-correction technique
// vendor SDKs ship. The paper (§3.5) notes Q-BEEP composes with other
// mitigation methods; this package provides the natural partner: readout
// correction removes the classifier bit-flips, Q-BEEP then handles the
// circuit-level Hamming structure. The composition is exercised by
// BenchmarkAblationComposition and the readout tests.
package readout

import (
	"fmt"

	"qbeep/internal/bitstring"
	"qbeep/internal/device"
)

// MaxQubits bounds the dense correction (2^n-entry probability vector).
const MaxQubits = 20

// Mitigator inverts per-qubit readout confusion matrices. Under the
// symmetric-error model the calibration publishes (one flip probability
// per qubit), the confusion matrix of qubit q is
//
//	M_q = [[1-e_q, e_q], [e_q, 1-e_q]]
//
// and the register matrix is the tensor product. Its inverse is applied
// axis-by-axis, so the correction is O(n·2^n) rather than O(4^n).
type Mitigator struct {
	n     int
	flips []float64 // per-qubit flip probability e_q
}

// New builds a mitigator for the first n physical qubits of the backend's
// calibration. qubits selects which physical qubit feeds each logical
// position (e.g. a transpile layout); nil means identity.
func New(b *device.Backend, n int, qubits []int) (*Mitigator, error) {
	if b == nil || b.Calibration == nil {
		return nil, fmt.Errorf("readout: nil backend")
	}
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("readout: width %d outside (0,%d]", n, MaxQubits)
	}
	if qubits == nil {
		qubits = make([]int, n)
		for i := range qubits {
			qubits[i] = i
		}
	}
	if len(qubits) != n {
		return nil, fmt.Errorf("readout: %d qubits for width %d", len(qubits), n)
	}
	m := &Mitigator{n: n, flips: make([]float64, n)}
	for i, q := range qubits {
		if q < 0 || q >= len(b.Calibration.Qubits) {
			return nil, fmt.Errorf("readout: physical qubit %d outside calibration", q)
		}
		e := b.Calibration.Qubits[q].ReadoutError
		if e >= 0.5 {
			return nil, fmt.Errorf("readout: qubit %d error %v not invertible (>= 0.5)", q, e)
		}
		m.flips[i] = e
	}
	return m, nil
}

// NewFromRates builds a mitigator directly from per-qubit flip rates.
func NewFromRates(flips []float64) (*Mitigator, error) {
	if len(flips) == 0 || len(flips) > MaxQubits {
		return nil, fmt.Errorf("readout: %d rates outside (0,%d]", len(flips), MaxQubits)
	}
	for i, e := range flips {
		if e < 0 || e >= 0.5 {
			return nil, fmt.Errorf("readout: rate %d = %v outside [0,0.5)", i, e)
		}
	}
	return &Mitigator{n: len(flips), flips: append([]float64(nil), flips...)}, nil
}

// Apply corrects a measured distribution: p_true = M⁻¹ p_observed,
// applied per qubit. Small negative entries from statistical noise are
// clipped to zero and the result renormalized to the input total.
func (m *Mitigator) Apply(counts *bitstring.Dist) (*bitstring.Dist, error) {
	if counts == nil || counts.Total() == 0 {
		return nil, fmt.Errorf("readout: empty counts")
	}
	if counts.Width() != m.n {
		return nil, fmt.Errorf("readout: counts width %d vs mitigator %d", counts.Width(), m.n)
	}
	dim := 1 << uint(m.n)
	vec := make([]float64, dim)
	counts.Each(func(v bitstring.BitString, c float64) {
		vec[v] = c
	})
	// Per-qubit inverse: M⁻¹ = 1/(1-2e) · [[1-e, -e], [-e, 1-e]].
	for q := 0; q < m.n; q++ {
		e := m.flips[q]
		if e == 0 {
			continue
		}
		det := 1 - 2*e
		a := (1 - e) / det
		b := -e / det
		mask := 1 << uint(q)
		for i := 0; i < dim; i++ {
			if i&mask != 0 {
				continue
			}
			j := i | mask
			v0, v1 := vec[i], vec[j]
			vec[i] = a*v0 + b*v1
			vec[j] = b*v0 + a*v1
		}
	}
	out := bitstring.NewDist(m.n)
	for i, c := range vec {
		if c > 0 {
			out.Add(bitstring.BitString(i), c)
		}
	}
	if out.Total() == 0 {
		return nil, fmt.Errorf("readout: correction removed all mass")
	}
	return out.Normalized(counts.Total()), nil
}

// ExpectedFlips returns the summed per-qubit flip probability — the
// readout contribution to a λ budget.
func (m *Mitigator) ExpectedFlips() float64 {
	var s float64
	for _, e := range m.flips {
		s += e
	}
	return s
}
