package readout

import (
	"math"
	"testing"
	"testing/quick"

	"qbeep/internal/bitstring"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewValidation(t *testing.T) {
	b, err := device.ByName("carthage")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, 3, nil); err == nil {
		t.Error("nil backend should error")
	}
	if _, err := New(b, 0, nil); err == nil {
		t.Error("zero width should error")
	}
	if _, err := New(b, 3, []int{0, 1}); err == nil {
		t.Error("qubit list mismatch should error")
	}
	if _, err := New(b, 3, []int{0, 1, 99}); err == nil {
		t.Error("out-of-range physical should error")
	}
	if _, err := New(b, 3, nil); err != nil {
		t.Errorf("valid construction failed: %v", err)
	}
}

func TestNewFromRatesValidation(t *testing.T) {
	if _, err := NewFromRates(nil); err == nil {
		t.Error("empty rates should error")
	}
	if _, err := NewFromRates([]float64{0.6}); err == nil {
		t.Error("rate >= 0.5 should error")
	}
	if _, err := NewFromRates([]float64{-0.1}); err == nil {
		t.Error("negative rate should error")
	}
}

func TestApplyInvertsExactConfusion(t *testing.T) {
	// Construct the exactly-confused distribution of a point mass and
	// verify the mitigator recovers the point mass.
	flips := []float64{0.05, 0.1, 0.02}
	m, err := NewFromRates(flips)
	if err != nil {
		t.Fatal(err)
	}
	truth := bitstring.BitString(0b101)
	confused := bitstring.NewDist(3)
	for v := bitstring.BitString(0); v < 8; v++ {
		p := 1.0
		for q := 0; q < 3; q++ {
			if v.Bit(q) == truth.Bit(q) {
				p *= 1 - flips[q]
			} else {
				p *= flips[q]
			}
		}
		confused.Add(v, p*1000)
	}
	out, err := m.Apply(confused)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(out.Prob(truth), 1, 1e-9) {
		t.Errorf("recovered P(truth) = %v", out.Prob(truth))
	}
	if !approx(out.Total(), confused.Total(), 1e-6) {
		t.Errorf("total changed: %v -> %v", confused.Total(), out.Total())
	}
}

func TestApplySampledCountsImprove(t *testing.T) {
	// Sampled (noisy) confusion: mitigation should move the distribution
	// toward the truth even with clipping.
	flips := []float64{0.08, 0.08, 0.08, 0.08}
	m, _ := NewFromRates(flips)
	truth := bitstring.BitString(0b1010)
	rng := mathx.NewRNG(4)
	raw := bitstring.NewDist(4)
	for shot := 0; shot < 8000; shot++ {
		v := truth
		for q := 0; q < 4; q++ {
			if rng.Float64() < flips[q] {
				v = v.FlipBit(q)
			}
		}
		raw.Add(v, 1)
	}
	out, err := m.Apply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Prob(truth) <= raw.Prob(truth) {
		t.Errorf("readout mitigation did not improve: %v -> %v",
			raw.Prob(truth), out.Prob(truth))
	}
	if out.Prob(truth) < 0.97 {
		t.Errorf("recovered mass %v too low", out.Prob(truth))
	}
}

func TestApplyValidation(t *testing.T) {
	m, _ := NewFromRates([]float64{0.1, 0.1})
	if _, err := m.Apply(nil); err == nil {
		t.Error("nil counts should error")
	}
	if _, err := m.Apply(bitstring.NewDist(2)); err == nil {
		t.Error("empty counts should error")
	}
	wrong := bitstring.NewDist(3)
	wrong.Add(0, 1)
	if _, err := m.Apply(wrong); err == nil {
		t.Error("width mismatch should error")
	}
}

func TestZeroErrorIsIdentity(t *testing.T) {
	m, _ := NewFromRates([]float64{0, 0})
	d := bitstring.NewDist(2)
	d.Add(0b01, 30)
	d.Add(0b10, 70)
	out, err := m.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if bitstring.TVD(d, out) > 1e-12 {
		t.Error("zero-error mitigation should be identity")
	}
}

func TestApplyPreservesTotalQuick(t *testing.T) {
	f := func(c0, c1, c2, c3 uint8, e1Raw, e2Raw uint8) bool {
		e1 := float64(e1Raw) / 600 // < 0.43
		e2 := float64(e2Raw) / 600
		m, err := NewFromRates([]float64{e1, e2})
		if err != nil {
			return false
		}
		d := bitstring.NewDist(2)
		d.Add(0, float64(c0))
		d.Add(1, float64(c1))
		d.Add(2, float64(c2))
		d.Add(3, float64(c3))
		if d.Total() == 0 {
			return true
		}
		out, err := m.Apply(d)
		if err != nil {
			// All-mass-removed is a legitimate failure for adversarial
			// inputs; anything else is not.
			return err.Error() == "readout: correction removed all mass"
		}
		return approx(out.Total(), d.Total(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestExpectedFlips(t *testing.T) {
	m, _ := NewFromRates([]float64{0.1, 0.2, 0.05})
	if !approx(m.ExpectedFlips(), 0.35, 1e-12) {
		t.Errorf("ExpectedFlips = %v", m.ExpectedFlips())
	}
}

func TestCompositionWithQBEEPStyleCounts(t *testing.T) {
	// Readout flips on top of Poisson-clustered circuit errors: readout
	// correction first, then the circuit-level structure remains for
	// Q-BEEP. Here we only verify readout correction strictly improves
	// fidelity on the composite channel.
	flips := []float64{0.06, 0.06, 0.06, 0.06, 0.06}
	m, _ := NewFromRates(flips)
	truth := bitstring.BitString(0b10110)
	rng := mathx.NewRNG(9)
	pois := mathx.Poisson{Lambda: 0.8}
	raw := bitstring.NewDist(5)
	for shot := 0; shot < 8000; shot++ {
		v := truth
		k := pois.Sample(rng.Float64)
		for i := 0; i < k; i++ {
			v = v.FlipBit(rng.Intn(5))
		}
		for q := 0; q < 5; q++ {
			if rng.Float64() < flips[q] {
				v = v.FlipBit(q)
			}
		}
		raw.Add(v, 1)
	}
	ideal := bitstring.NewDist(5)
	ideal.Add(truth, 1)
	out, err := m.Apply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if bitstring.Fidelity(ideal, out) <= bitstring.Fidelity(ideal, raw) {
		t.Error("readout correction should improve the composite channel")
	}
}
