package runledger

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Writer appends records to an NDJSON ledger: one JSON object per
// line, flushed per record so a crashed run still leaves every
// completed record on disk. Safe for concurrent use (experiment
// workloads append from par.ForEach workers); the first write error is
// latched and returned by every subsequent call, mirroring
// obs.NDJSONSink.
type Writer struct {
	mu   sync.Mutex
	w    *bufio.Writer
	c    io.Closer
	seq  int64
	err  error
	path string
}

// Create opens (or creates) the ledger at path for appending. Existing
// records are preserved; Seq numbering continues from the count of
// lines already present.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	seq, err := countLines(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{w: bufio.NewWriter(f), c: f, seq: seq, path: path}, nil
}

// NewWriter wraps an in-memory writer (tests, qbeep-ledger fixtures).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// countLines counts newline-terminated records already in the file so
// Seq stays monotonic across process restarts.
func countLines(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var n int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		n++
	}
	return n, sc.Err()
}

// Append stamps rec.Schema and rec.Seq and writes it as one NDJSON
// line, flushing to the underlying file.
func (l *Writer) Append(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	rec.Schema = SchemaVersion
	rec.Seq = l.seq
	line, err := json.Marshal(rec)
	if err != nil {
		l.err = err
		return err
	}
	if _, err := l.w.Write(line); err != nil {
		l.err = err
		return err
	}
	if err := l.w.WriteByte('\n'); err != nil {
		l.err = err
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	l.seq++
	return nil
}

// Close flushes and closes the underlying file, returning any latched
// write error.
func (l *Writer) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ferr := l.w.Flush()
	if l.err == nil {
		l.err = ferr
	}
	if l.c != nil {
		cerr := l.c.Close()
		if l.err == nil {
			l.err = cerr
		}
		l.c = nil
	}
	return l.err
}

// maxLineBytes bounds one ledger line; spectra are short (≤ width+1
// floats) so 1 MiB is generous.
const maxLineBytes = 1 << 20

// Read decodes every record from r, in file order. Blank lines are
// skipped; a malformed line fails with its line number.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	var out []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("runledger: line %d: %w", lineNo, err)
		}
		if rec.Schema > SchemaVersion {
			return nil, fmt.Errorf("runledger: line %d: schema %d newer than supported %d", lineNo, rec.Schema, SchemaVersion)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadFile reads an NDJSON ledger from disk.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// ErrEmpty reports a ledger (or a filtered view of one) with no
// records where at least one was required.
var ErrEmpty = errors.New("runledger: no records")
