package runledger

import "math"

// Drift detection over a quality-metric series (λ, Hellinger shift)
// ordered by ledger Seq. Two classic control charts run side by side:
//
//   - EWMA: z_i = α·x_i + (1−α)·z_{i−1}, alarmed when z leaves
//     μ0 ± L·σ0·sqrt(α/(2−α)) — the chart's asymptotic standard
//     deviation. Catches sustained step shifts quickly.
//   - Tabular CUSUM: C⁺_i = max(0, C⁺_{i−1} + x_i − μ0 − k·σ0),
//     C⁻ symmetric, alarmed past h·σ0. With the textbook k = 0.5,
//     h = 5 it accumulates slow ramps the EWMA band can lag on.
//
// The baseline moments (μ0, σ0) are frozen from the warmup prefix, so
// drift after warmup cannot pull the reference along with it.

// DriftConfig parameterizes Detect. Zero values select the defaults
// noted per field.
type DriftConfig struct {
	// Alpha is the EWMA smoothing weight in (0, 1]; default 0.2.
	Alpha float64
	// L is the EWMA control-limit width in σ_ewma units; default 3.
	L float64
	// K is the CUSUM reference (allowance) in σ0 units; default 0.5.
	K float64
	// H is the CUSUM decision threshold in σ0 units; default 5.
	H float64
	// Warmup is the number of leading samples that freeze μ0 and σ0;
	// default min(50, len/3) with a floor of 4. The CUSUM integrates
	// the baseline's sampling error over the whole tail, so a too-short
	// warmup false-alarms on long in-control series.
	Warmup int
}

// withDefaults resolves zero fields against the series length.
func (c DriftConfig) withDefaults(n int) DriftConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.L <= 0 {
		c.L = 3
	}
	if c.K <= 0 {
		c.K = 0.5
	}
	if c.H <= 0 {
		c.H = 5
	}
	if c.Warmup <= 0 {
		c.Warmup = 50
		if n/3 < c.Warmup {
			c.Warmup = n / 3
		}
		if c.Warmup < 4 {
			c.Warmup = 4
		}
	}
	return c
}

// Alarm is one control-chart excursion.
type Alarm struct {
	// Index is the 0-based sample index that tripped the chart.
	Index int `json:"index"`
	// Detector is "ewma" or "cusum".
	Detector string `json:"detector"`
	// Stat is the chart statistic at the alarm (EWMA value, or the
	// signed CUSUM sum in σ0 units).
	Stat float64 `json:"stat"`
	// Limit is the threshold that was crossed, in the same units.
	Limit float64 `json:"limit"`
}

// DriftResult is the outcome of one Detect call.
type DriftResult struct {
	N      int     `json:"n"`
	Warmup int     `json:"warmup"`
	Mean   float64 `json:"mean"` // baseline μ0 (warmup prefix)
	Std    float64 `json:"std"`  // baseline σ0 (warmup prefix)
	Alarms []Alarm `json:"alarms,omitempty"`
}

// Drifted reports whether any chart alarmed.
func (r DriftResult) Drifted() bool { return len(r.Alarms) > 0 }

// Detect runs both charts over series. Series shorter than the warmup
// (plus one) cannot alarm. Each detector reports at most its first
// alarm — the onset is what matters operationally; once a chart is
// tripped, later excursions of the same chart are the same episode.
func Detect(series []float64, cfg DriftConfig) DriftResult {
	cfg = cfg.withDefaults(len(series))
	res := DriftResult{N: len(series), Warmup: cfg.Warmup}
	if len(series) <= cfg.Warmup {
		if len(series) > 0 {
			res.Mean, res.Std = meanStd(series)
		}
		return res
	}
	mu0, sigma0 := meanStd(series[:cfg.Warmup])
	res.Mean, res.Std = mu0, sigma0
	if sigma0 < 1e-12 {
		// Deterministic warmup (repeated identical runs): any later
		// deviation is a real change, but a zero-width band would alarm
		// on float noise. Use a tiny relative floor instead.
		sigma0 = math.Max(math.Abs(mu0), 1) * 1e-9
	}

	ewmaLimit := cfg.L * sigma0 * math.Sqrt(cfg.Alpha/(2-cfg.Alpha))
	z := mu0
	var cPos, cNeg float64 // CUSUM sums, in σ0 units
	var ewmaDone, cusumDone bool
	for i, x := range series {
		z = cfg.Alpha*x + (1-cfg.Alpha)*z
		if i < cfg.Warmup {
			continue
		}
		if !ewmaDone && math.Abs(z-mu0) > ewmaLimit {
			res.Alarms = append(res.Alarms, Alarm{Index: i, Detector: "ewma", Stat: z, Limit: ewmaLimit})
			ewmaDone = true
		}
		u := (x - mu0) / sigma0
		cPos = math.Max(0, cPos+u-cfg.K)
		cNeg = math.Max(0, cNeg-u-cfg.K)
		if !cusumDone {
			switch {
			case cPos > cfg.H:
				res.Alarms = append(res.Alarms, Alarm{Index: i, Detector: "cusum", Stat: cPos, Limit: cfg.H})
				cusumDone = true
			case cNeg > cfg.H:
				res.Alarms = append(res.Alarms, Alarm{Index: i, Detector: "cusum", Stat: -cNeg, Limit: cfg.H})
				cusumDone = true
			}
		}
		if ewmaDone && cusumDone {
			break
		}
	}
	return res
}
