// Package runledger is the append-only quality ledger for mitigation
// runs (DESIGN.md §16). Every mitigated execution — the qbeep CLI, the
// simulator, an experiment workload — can append one Record to an
// NDJSON file; cmd/qbeep-ledger aggregates those records, watches the
// λ and Hellinger-shift series for drift (EWMA + CUSUM control
// charts), and gates HEAD against a pinned QUALITY_baseline.json the
// same way cmd/qbeep-bench gates benchmark ratios.
//
// The package is deliberately dependency-light (stdlib only): it is
// imported by internal/obs, whose recorder stamps wall-clock time and
// buildinfo, so runledger itself must not reach back into obs.
package runledger

import (
	"crypto/sha256"
	"encoding/hex"
)

// SchemaVersion is stamped into every record so readers can reject or
// migrate ledgers written by a different layout.
const SchemaVersion = 1

// Record is one mitigation run. Identity fields (tool, backend,
// circuit, circuit hash) locate the run; the quality block carries the
// Hamming-spectrum metrics the paper optimizes (Q-BEEP §IV). Optional
// fields use omitempty so records stay one short NDJSON line.
type Record struct {
	Schema int `json:"schema"`
	// Seq is the append order within one ledger file, stamped by the
	// Writer. It gives drift detection a stable sample order even when
	// the wall-clock Time field ties at second resolution.
	Seq int64 `json:"seq"`
	// Time is RFC3339 wall-clock time, stamped by the obs recorder (not
	// the Writer) so pure-runledger round-trip tests stay deterministic.
	Time      string `json:"time,omitempty"`
	Tool      string `json:"tool,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	// TraceID links the record to the span tree in the -trace NDJSON
	// (obs.TraceIDFrom); 0 means the run was untraced.
	TraceID uint64 `json:"trace,omitempty"`
	// Figure tags records emitted by qbeep-experiments with the figure
	// that produced them ("7", "qasmbench", ...).
	Figure      string  `json:"figure,omitempty"`
	Backend     string  `json:"backend,omitempty"`
	Circuit     string  `json:"circuit,omitempty"`
	CircuitHash string  `json:"circuit_hash,omitempty"`
	Lambda      float64 `json:"lambda,omitempty"`
	Shots       float64 `json:"shots,omitempty"`
	Stages      []Stage `json:"stages,omitempty"`
	Quality     Quality `json:"quality"`
}

// Stage is one timed pipeline phase (load, estimate, mitigate, ...).
type Stage struct {
	Name  string  `json:"name"`
	WallS float64 `json:"wall_s"`
	CPUS  float64 `json:"cpu_s,omitempty"`
}

// Quality is the mitigation-quality block. HellingerShift is always
// present (raw vs mitigated needs no ground truth); the *Raw /
// *Mitigated pairs and PST/IST are populated only when the caller
// knows the ideal distribution or correct bitstring.
type Quality struct {
	// HellingerShift is H(raw, mitigated): how far Bayesian induction
	// moved the distribution. Zero means mitigation was a no-op.
	HellingerShift float64 `json:"hellinger_shift"`
	// Hellinger distance to the ground-truth distribution, before and
	// after mitigation (lower is better).
	HellingerRaw       float64 `json:"hellinger_raw,omitempty"`
	HellingerMitigated float64 `json:"hellinger_mitigated,omitempty"`
	// Bhattacharyya fidelity against ground truth (higher is better).
	FidelityRaw       float64 `json:"fidelity_raw,omitempty"`
	FidelityMitigated float64 `json:"fidelity_mitigated,omitempty"`
	// Probability of Successful Trial (paper Eq. 6) and the mitigated /
	// raw improvement ratio, for deterministic circuits.
	PSTRaw         float64 `json:"pst_raw,omitempty"`
	PSTMitigated   float64 `json:"pst_mitigated,omitempty"`
	PSTImprovement float64 `json:"pst_improvement,omitempty"`
	// IST is Inference Strength: P(correct) over the strongest
	// incorrect outcome's probability, after mitigation.
	IST float64 `json:"ist,omitempty"`
	// PosteriorEntropy is the Shannon entropy (bits) of the mitigated
	// distribution — a sharpening indicator across calibration drift.
	PosteriorEntropy float64 `json:"posterior_entropy,omitempty"`
	// Flow-iteration telemetry from the state-graph solver.
	Iterations int  `json:"iterations,omitempty"`
	Converged  bool `json:"converged,omitempty"`
	// Per-Hamming-distance probability mass around SpectrumRef
	// ("expected" when ground truth is known, "mode" otherwise),
	// before and after mitigation. Index i is distance i.
	SpectrumRef    string    `json:"spectrum_ref,omitempty"`
	SpectrumBefore []float64 `json:"spectrum_before,omitempty"`
	SpectrumAfter  []float64 `json:"spectrum_after,omitempty"`
}

// HashBytes returns the ledger's circuit-hash form of src: the first
// 12 hex digits of SHA-256, enough to group records by circuit without
// bloating every line.
func HashBytes(src []byte) string {
	sum := sha256.Sum256(src)
	return hex.EncodeToString(sum[:6])
}
