package runledger

import (
	"path/filepath"
	"testing"
)

// gateFixture builds a small healthy ledger: two backends, ground
// truth known, deterministic values.
func gateFixture() []Record {
	var recs []Record
	for i := 0; i < 4; i++ {
		recs = append(recs, Record{
			Tool: "qbeep-experiments", Figure: "7",
			Backend: "istanbul", Circuit: "bv_8", Lambda: 1.2,
			Quality: Quality{
				HellingerShift: 0.20, HellingerMitigated: 0.20,
				FidelityMitigated: 0.95, PSTMitigated: 0.80, PSTImprovement: 1.30,
				PosteriorEntropy: 1.5,
			},
		})
		recs = append(recs, Record{
			Tool: "qbeep-experiments", Figure: "7",
			Backend: "almaden", Circuit: "bv_8", Lambda: 0.9,
			Quality: Quality{
				HellingerShift: 0.15, HellingerMitigated: 0.25,
				FidelityMitigated: 0.92, PSTMitigated: 0.75, PSTImprovement: 1.20,
				PosteriorEntropy: 1.8,
			},
		})
	}
	return recs
}

// TestGateSelfComparison: a ledger compared against its own baseline
// must pass — the identity gate, same contract as bench-gate.
func TestGateSelfComparison(t *testing.T) {
	recs := gateFixture()
	base, err := BuildBaseline(recs, "abc1234")
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Groups) != 3 { // overall + 2 backends
		t.Fatalf("want 3 baseline groups, got %d", len(base.Groups))
	}
	findings, failed, err := CompareBaseline(recs, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("self comparison failed: %+v", findings)
	}
	for _, f := range findings {
		if f.Delta != 0 {
			t.Errorf("self comparison delta %v for %s/%s", f.Delta, f.Backend, f.Metric)
		}
	}
}

// TestGateSyntheticRegression: degrade mitigated quality past the
// threshold and the gate must fail with the culpable metrics named —
// the acceptance-criteria scenario for make quality-gate.
func TestGateSyntheticRegression(t *testing.T) {
	recs := gateFixture()
	base, err := BuildBaseline(recs, "abc1234")
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic regression: PST improvement collapses and the
	// mitigated Hellinger distance doubles on every run.
	bad := make([]Record, len(recs))
	copy(bad, recs)
	for i := range bad {
		bad[i].Quality.PSTImprovement = 1.0
		bad[i].Quality.HellingerMitigated *= 2
	}
	findings, failed, err := CompareBaseline(bad, base, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("synthetic regression passed the gate: %+v", findings)
	}
	failedMetrics := map[string]bool{}
	for _, f := range findings {
		if f.Failed {
			failedMetrics[f.Metric] = true
		}
	}
	if !failedMetrics[MetricPSTImprovement] || !failedMetrics[MetricHellingerMitigated] {
		t.Fatalf("regressed metrics not flagged: %+v", findings)
	}
	if failedMetrics[MetricLambda] {
		t.Fatalf("lambda did not change but was flagged: %+v", findings)
	}
}

// TestGateBandMetric: λ is gated as a band — drifting either way past
// the threshold fails, small wobble passes.
func TestGateBandMetric(t *testing.T) {
	recs := gateFixture()
	base, _ := BuildBaseline(recs, "")
	for _, scale := range []float64{1.25, 0.75} {
		bad := make([]Record, len(recs))
		copy(bad, recs)
		for i := range bad {
			bad[i].Lambda *= scale
		}
		_, failed, err := CompareBaseline(bad, base, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		if !failed {
			t.Errorf("lambda scaled by %v passed a 10%% band gate", scale)
		}
	}
	// 5% wobble stays inside the 10% band.
	ok := make([]Record, len(recs))
	copy(ok, recs)
	for i := range ok {
		ok[i].Lambda *= 1.05
	}
	if _, failed, _ := CompareBaseline(ok, base, 0.10); failed {
		t.Error("5% lambda wobble failed a 10% band gate")
	}
}

// TestGateMissingGroupFails: if the gate workload no longer produces
// records for a pinned group, that is a failure, not a silent skip.
func TestGateMissingGroupFails(t *testing.T) {
	recs := gateFixture()
	base, _ := BuildBaseline(recs, "")
	only := Filter{Backend: "istanbul"}.Apply(recs)
	findings, failed, err := CompareBaseline(only, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("missing almaden group passed: %+v", findings)
	}
}

// TestBaselineRoundTrip: Save/Load preserves the document.
func TestBaselineRoundTrip(t *testing.T) {
	base, _ := BuildBaseline(gateFixture(), "abc1234")
	path := filepath.Join(t.TempDir(), "QUALITY_baseline.json")
	if err := base.SaveBaseline(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Commit != "abc1234" || back.Threshold != 0.10 || len(back.Groups) != len(base.Groups) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if _, failed, err := CompareBaseline(gateFixture(), back, 0); err != nil || failed {
		t.Fatalf("reloaded baseline failed self comparison: failed=%v err=%v", failed, err)
	}
}

func TestCompareBaselineEmptyLedger(t *testing.T) {
	base, _ := BuildBaseline(gateFixture(), "")
	if _, failed, err := CompareBaseline(nil, base, 0); err == nil || !failed {
		t.Fatal("empty ledger must fail the gate with ErrEmpty")
	}
}
