package runledger

import (
	"math"
	"sort"
)

// Metric names understood by Aggregate, drift detection, and the
// baseline gate. Each extracts one float64 series from a record slice;
// records where the field is absent (zero and not meaningful) are
// skipped per metric, so "pst_improvement" aggregates only runs with
// ground truth.
const (
	MetricLambda             = "lambda"
	MetricHellingerShift     = "hellinger_shift"
	MetricHellingerMitigated = "hellinger_mitigated"
	MetricFidelityMitigated  = "fidelity_mitigated"
	MetricPSTImprovement     = "pst_improvement"
	MetricPSTMitigated       = "pst_mitigated"
	MetricPosteriorEntropy   = "posterior_entropy"
	MetricMitigateWallS      = "mitigate_wall_s"
)

// MetricNames lists every metric in presentation order.
var MetricNames = []string{
	MetricLambda,
	MetricHellingerShift,
	MetricHellingerMitigated,
	MetricFidelityMitigated,
	MetricPSTMitigated,
	MetricPSTImprovement,
	MetricPosteriorEntropy,
	MetricMitigateWallS,
}

// MetricValue extracts the named metric from rec. ok is false when the
// record does not carry the metric (no ground truth, no such stage).
func MetricValue(rec *Record, metric string) (v float64, ok bool) {
	q := &rec.Quality
	switch metric {
	case MetricLambda:
		return rec.Lambda, rec.Lambda > 0
	case MetricHellingerShift:
		return q.HellingerShift, true
	case MetricHellingerMitigated:
		return q.HellingerMitigated, q.HellingerMitigated > 0 || q.FidelityMitigated > 0
	case MetricFidelityMitigated:
		return q.FidelityMitigated, q.FidelityMitigated > 0
	case MetricPSTMitigated:
		return q.PSTMitigated, q.PSTMitigated > 0
	case MetricPSTImprovement:
		return q.PSTImprovement, q.PSTImprovement > 0
	case MetricPosteriorEntropy:
		return q.PosteriorEntropy, q.PosteriorEntropy != 0
	case MetricMitigateWallS:
		for _, s := range rec.Stages {
			if s.Name == "mitigate" {
				return s.WallS, true
			}
		}
		return 0, false
	}
	return 0, false
}

// Series extracts the named metric from records that carry it, in
// slice order (which is Seq order for a ledger read back from disk).
func Series(recs []Record, metric string) []float64 {
	var out []float64
	for i := range recs {
		if v, ok := MetricValue(&recs[i], metric); ok {
			out = append(out, v)
		}
	}
	return out
}

// Filter returns the records matching every non-empty criterion.
// Circuit matches either the circuit name or the circuit hash, so
// users can paste whichever the ledger line shows.
type Filter struct {
	Backend string
	Circuit string
	Figure  string
	Tool    string
}

// Apply returns the matching subset of recs, preserving order.
func (f Filter) Apply(recs []Record) []Record {
	if f == (Filter{}) {
		return recs
	}
	var out []Record
	for _, r := range recs {
		if f.Backend != "" && r.Backend != f.Backend {
			continue
		}
		if f.Circuit != "" && r.Circuit != f.Circuit && r.CircuitHash != f.Circuit {
			continue
		}
		if f.Figure != "" && r.Figure != f.Figure {
			continue
		}
		if f.Tool != "" && r.Tool != f.Tool {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Stats is a summary of one metric series.
type Stats struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Summarize computes Stats over series (order-insensitive).
func Summarize(series []float64) Stats {
	s := Stats{N: len(series)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), series...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	return s
}

// quantile interpolates linearly between order statistics of a sorted
// slice (same estimator as obs.Histogram.Quantile).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Group is one aggregation bucket: the records sharing a (backend,
// circuit) key, summarized per metric.
type Group struct {
	Backend string           `json:"backend,omitempty"`
	Circuit string           `json:"circuit,omitempty"`
	N       int              `json:"n"`
	Metrics map[string]Stats `json:"metrics"`
}

// GroupBy selects the aggregation key.
type GroupBy int

const (
	// ByBackend buckets records per backend.
	ByBackend GroupBy = iota
	// ByCircuit buckets per circuit (falling back to circuit hash when
	// the name is empty).
	ByCircuit
	// ByBackendCircuit buckets per (backend, circuit) pair.
	ByBackendCircuit
)

// Aggregate buckets recs by key and summarizes every metric that at
// least one record in the bucket carries. Groups come back sorted by
// (backend, circuit).
func Aggregate(recs []Record, by GroupBy) []Group {
	type key struct{ backend, circuit string }
	buckets := map[key][]Record{}
	for _, r := range recs {
		circuit := r.Circuit
		if circuit == "" {
			circuit = r.CircuitHash
		}
		k := key{}
		switch by {
		case ByBackend:
			k.backend = r.Backend
		case ByCircuit:
			k.circuit = circuit
		case ByBackendCircuit:
			k.backend, k.circuit = r.Backend, circuit
		}
		buckets[k] = append(buckets[k], r)
	}
	keys := make([]key, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].backend != keys[j].backend {
			return keys[i].backend < keys[j].backend
		}
		return keys[i].circuit < keys[j].circuit
	})
	out := make([]Group, 0, len(keys))
	for _, k := range keys {
		rs := buckets[k]
		g := Group{Backend: k.backend, Circuit: k.circuit, N: len(rs), Metrics: map[string]Stats{}}
		for _, m := range MetricNames {
			if series := Series(rs, m); len(series) > 0 {
				g.Metrics[m] = Summarize(series)
			}
		}
		out = append(out, g)
	}
	return out
}

// meanStd returns the sample mean and Bessel-corrected standard
// deviation (the drift charts freeze these from a short warmup, so
// the unbiased estimator matters).
func meanStd(series []float64) (mean, std float64) {
	if len(series) == 0 {
		return 0, 0
	}
	for _, v := range series {
		mean += v
	}
	mean /= float64(len(series))
	if len(series) == 1 {
		return mean, 0
	}
	var ss float64
	for _, v := range series {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(series)-1))
}
