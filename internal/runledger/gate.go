package runledger

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Quality gate: QUALITY_baseline.json pins per-group metric means for
// a known-good tree; CompareBaseline recomputes the same aggregates
// from a fresh ledger and fails when a metric regresses past the
// threshold. Mirrors the cmd/qbeep-bench ratio gate (DESIGN.md §11),
// but over mitigation quality instead of speed: the gated metrics are
// seed-deterministic outputs of the quick experiment workload, so the
// gate is noise-free in a way wall-clock benchmarks are not.

// Direction classifies how a metric regresses.
type Direction int

const (
	// HigherBetter fails when current < baseline·(1−threshold).
	HigherBetter Direction = iota
	// LowerBetter fails when current > baseline·(1+threshold).
	LowerBetter
	// Band fails when |current−baseline| > threshold·|baseline|:
	// the metric is an equilibrium, not a score (λ must track the
	// device model, not trend anywhere).
	Band
)

// GateDirections maps each gated metric to its regression semantics.
// Metrics absent here (timing) are reported but never gated.
var GateDirections = map[string]Direction{
	MetricLambda:             Band,
	MetricHellingerShift:     Band,
	MetricHellingerMitigated: LowerBetter,
	MetricFidelityMitigated:  HigherBetter,
	MetricPSTMitigated:       HigherBetter,
	MetricPSTImprovement:     HigherBetter,
	MetricPosteriorEntropy:   Band,
}

// BaselineGroup pins the mean of each gated metric for one (backend,
// circuit) bucket. Empty Backend/Circuit means "all records".
type BaselineGroup struct {
	Backend string             `json:"backend,omitempty"`
	Circuit string             `json:"circuit,omitempty"`
	N       int                `json:"n"`
	Means   map[string]float64 `json:"means"`
}

// Baseline is the checked-in QUALITY_baseline.json document.
type Baseline struct {
	Description string `json:"description,omitempty"`
	Commit      string `json:"commit,omitempty"`
	// Threshold is the default relative tolerance (0.10 = 10%) applied
	// when the comparison does not override it.
	Threshold float64         `json:"threshold"`
	Groups    []BaselineGroup `json:"groups"`
}

// BuildBaseline aggregates recs into a baseline: one overall group
// plus one group per backend, pinning the mean of every gated metric
// the bucket carries.
func BuildBaseline(recs []Record, commit string) (Baseline, error) {
	if len(recs) == 0 {
		return Baseline{}, ErrEmpty
	}
	b := Baseline{
		Description: "Mitigation-quality baseline for make quality-gate (cmd/qbeep-ledger -gate).",
		Commit:      commit,
		Threshold:   0.10,
	}
	b.Groups = append(b.Groups, baselineGroup("", "", recs))
	backends := map[string]bool{}
	for _, r := range recs {
		if r.Backend != "" {
			backends[r.Backend] = true
		}
	}
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sub := Filter{Backend: n}.Apply(recs)
		b.Groups = append(b.Groups, baselineGroup(n, "", sub))
	}
	return b, nil
}

func baselineGroup(backend, circuit string, recs []Record) BaselineGroup {
	g := BaselineGroup{Backend: backend, Circuit: circuit, N: len(recs), Means: map[string]float64{}}
	for m := range GateDirections {
		if series := Series(recs, m); len(series) > 0 {
			g.Means[m] = Summarize(series).Mean
		}
	}
	return g
}

// LoadBaseline reads a baseline document from disk.
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// SaveBaseline writes the baseline as indented JSON (it is a
// checked-in file; diffs should be readable).
func (b Baseline) SaveBaseline(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// GateFinding is one metric comparison. Failed findings carry the
// reason the gate tripped.
type GateFinding struct {
	Backend  string  `json:"backend,omitempty"`
	Circuit  string  `json:"circuit,omitempty"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Delta is the signed relative change (current−baseline)/baseline.
	Delta  float64 `json:"delta"`
	Failed bool    `json:"failed"`
}

// CompareBaseline recomputes each baseline group's metric means from
// recs and gates them. threshold ≤ 0 uses the baseline's own default.
// A baseline group with no matching records fails (the gate workload
// shrank); a baseline metric the current run no longer carries fails
// likewise. Metrics sort within each group for deterministic output.
func CompareBaseline(recs []Record, base Baseline, threshold float64) (findings []GateFinding, failed bool, err error) {
	if len(recs) == 0 {
		return nil, true, ErrEmpty
	}
	if threshold <= 0 {
		threshold = base.Threshold
	}
	if threshold <= 0 {
		threshold = 0.10
	}
	for _, g := range base.Groups {
		sub := Filter{Backend: g.Backend, Circuit: g.Circuit}.Apply(recs)
		if len(sub) == 0 {
			findings = append(findings, GateFinding{Backend: g.Backend, Circuit: g.Circuit, Metric: "(records)", Baseline: float64(g.N), Failed: true})
			failed = true
			continue
		}
		metrics := make([]string, 0, len(g.Means))
		for m := range g.Means {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			baseMean := g.Means[m]
			f := GateFinding{Backend: g.Backend, Circuit: g.Circuit, Metric: m, Baseline: baseMean}
			series := Series(sub, m)
			if len(series) == 0 {
				f.Failed = true
				findings = append(findings, f)
				failed = true
				continue
			}
			f.Current = Summarize(series).Mean
			if baseMean != 0 {
				f.Delta = (f.Current - baseMean) / baseMean
			} else if f.Current != 0 {
				f.Delta = 1
			}
			switch GateDirections[m] {
			case HigherBetter:
				f.Failed = f.Delta < -threshold
			case LowerBetter:
				f.Failed = f.Delta > threshold
			case Band:
				f.Failed = f.Delta > threshold || f.Delta < -threshold
			}
			if f.Failed {
				failed = true
			}
			findings = append(findings, f)
		}
	}
	return findings, failed, nil
}
