package runledger

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata goldens")

// fixtureRecords is a deterministic two-record ledger exercising every
// field group: identity, stages, ground-truth quality, spectra.
func fixtureRecords() []Record {
	return []Record{
		{
			Time:        "2026-08-08T12:00:00Z",
			Tool:        "qbeep",
			GoVersion:   "go1.24",
			Revision:    "d4bdf6f",
			TraceID:     7,
			Backend:     "istanbul",
			Circuit:     "bv_8",
			CircuitHash: "a1b2c3d4e5f6",
			Lambda:      1.25,
			Shots:       1024,
			Stages: []Stage{
				{Name: "load", WallS: 0.002},
				{Name: "mitigate", WallS: 0.031, CPUS: 0.030},
			},
			Quality: Quality{
				HellingerShift:     0.18,
				HellingerRaw:       0.42,
				HellingerMitigated: 0.21,
				FidelityRaw:        0.80,
				FidelityMitigated:  0.95,
				PSTRaw:             0.61,
				PSTMitigated:       0.83,
				PSTImprovement:     1.36,
				IST:                9.5,
				PosteriorEntropy:   1.7,
				Iterations:         12,
				Converged:          true,
				SpectrumRef:        "expected",
				SpectrumBefore:     []float64{0.61, 0.25, 0.1, 0.04},
				SpectrumAfter:      []float64{0.83, 0.12, 0.04, 0.01},
			},
		},
		{
			Tool:    "qbeep-sim",
			Backend: "almaden",
			Circuit: "ghz_3",
			Lambda:  0.8,
			Shots:   256,
			Quality: Quality{HellingerShift: 0.05, SpectrumRef: "mode"},
		},
	}
}

// TestNDJSONRoundTripGolden pins the on-disk NDJSON encoding (one
// compact JSON object per line, omitempty optionals) and the
// Read ∘ Write identity, including Writer-stamped Schema/Seq.
func TestNDJSONRoundTripGolden(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := fixtureRecords()
	for i := range recs {
		if err := w.Append(&recs[i]); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	golden := filepath.Join("testdata", "ledger.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("NDJSON encoding drifted from golden:\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(back, recs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, recs)
	}
	for i, r := range back {
		if r.Schema != SchemaVersion || r.Seq != int64(i) {
			t.Errorf("record %d: schema=%d seq=%d, want schema=%d seq=%d", i, r.Schema, r.Seq, SchemaVersion, i)
		}
	}
}

// TestCreateAppendsAndResumesSeq re-opens an on-disk ledger and checks
// Seq numbering continues where the previous process stopped.
func TestCreateAppendsAndResumesSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Record{Tool: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(&Record{Tool: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Fatalf("want 2 records with seq 0,1; got %+v", recs)
	}
	if recs[0].Tool != "a" || recs[1].Tool != "b" {
		t.Fatalf("append order lost: %+v", recs)
	}
}

func TestReadRejectsMalformedLine(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("{\"schema\":1}\nnot json\n"))); err == nil {
		t.Fatal("want error for malformed line")
	}
	if _, err := Read(bytes.NewReader([]byte("{\"schema\":99}\n"))); err == nil {
		t.Fatal("want error for newer schema")
	}
}

func TestHashBytes(t *testing.T) {
	h := HashBytes([]byte("OPENQASM 2.0;"))
	if len(h) != 12 {
		t.Fatalf("hash length = %d, want 12", len(h))
	}
	if h == HashBytes([]byte("OPENQASM 3.0;")) {
		t.Fatal("distinct sources must hash differently")
	}
	if h != HashBytes([]byte("OPENQASM 2.0;")) {
		t.Fatal("hash must be deterministic")
	}
}

func TestFilterAndSeries(t *testing.T) {
	recs := fixtureRecords()
	if got := (Filter{Backend: "istanbul"}).Apply(recs); len(got) != 1 || got[0].Circuit != "bv_8" {
		t.Fatalf("backend filter: %+v", got)
	}
	if got := (Filter{Circuit: "a1b2c3d4e5f6"}).Apply(recs); len(got) != 1 {
		t.Fatalf("hash filter should match circuit_hash: %+v", got)
	}
	if got := Series(recs, MetricPSTImprovement); len(got) != 1 || got[0] != 1.36 {
		t.Fatalf("pst_improvement series: %v", got)
	}
	if got := Series(recs, MetricHellingerShift); len(got) != 2 {
		t.Fatalf("hellinger_shift series should cover both records: %v", got)
	}
	if got := Series(recs, MetricMitigateWallS); len(got) != 1 || got[0] != 0.031 {
		t.Fatalf("mitigate_wall_s series: %v", got)
	}
}

func TestAggregate(t *testing.T) {
	recs := fixtureRecords()
	groups := Aggregate(recs, ByBackend)
	if len(groups) != 2 {
		t.Fatalf("want 2 backend groups, got %+v", groups)
	}
	// Sorted by backend: almaden before istanbul.
	if groups[0].Backend != "almaden" || groups[1].Backend != "istanbul" {
		t.Fatalf("group order: %+v", groups)
	}
	ist := groups[1].Metrics[MetricLambda]
	if ist.N != 1 || ist.Mean != 1.25 {
		t.Fatalf("istanbul lambda stats: %+v", ist)
	}
	if _, ok := groups[0].Metrics[MetricPSTImprovement]; ok {
		t.Fatal("almaden has no ground truth; pst_improvement must be absent")
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("stats: %+v", s)
	}
	if s.P95 < 4.5 || s.P95 > 5 {
		t.Fatalf("p95 = %v, want in (4.5, 5]", s.P95)
	}
}
