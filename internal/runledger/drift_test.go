package runledger

import (
	"testing"

	"qbeep/internal/mathx"
)

// noisySeries builds a deterministic series μ + σ·N(0,1) using the
// repo's seeded RNG so the control-chart tests are exactly
// reproducible.
func noisySeries(rng *mathx.RNG, n int, mu, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + sigma*rng.NormFloat64()
	}
	return out
}

// TestDetectStationaryNoAlarms: in-control noise must not trip either
// chart (that is the whole point of the L/h widths).
func TestDetectStationaryNoAlarms(t *testing.T) {
	rng := mathx.NewRNG(7)
	series := noisySeries(rng, 200, 1.0, 0.02)
	res := Detect(series, DriftConfig{})
	if res.Drifted() {
		t.Fatalf("stationary series alarmed: %+v", res.Alarms)
	}
	if res.Warmup != 50 {
		t.Fatalf("warmup = %d, want default min(50, n/3) = 50", res.Warmup)
	}
	if res.Mean < 0.98 || res.Mean > 1.02 {
		t.Fatalf("baseline mean = %v, want ≈1.0", res.Mean)
	}
}

// TestDetectStepDrift: a +15σ step at sample 60 must alarm both
// charts shortly after onset — and never before it.
func TestDetectStepDrift(t *testing.T) {
	rng := mathx.NewRNG(7)
	series := noisySeries(rng, 60, 1.0, 0.02)
	series = append(series, noisySeries(rng, 60, 1.3, 0.02)...)
	res := Detect(series, DriftConfig{Warmup: 50})
	if len(res.Alarms) != 2 {
		t.Fatalf("want ewma+cusum alarms, got %+v", res.Alarms)
	}
	for _, a := range res.Alarms {
		if a.Index < 60 {
			t.Errorf("%s alarmed at %d, before the step at 60", a.Detector, a.Index)
		}
		if a.Index > 64 {
			t.Errorf("%s alarmed at %d, too long after the step at 60", a.Detector, a.Index)
		}
	}
}

// TestDetectDownwardStep: the charts are two-sided; a collapse (e.g.
// PST improvement falling) alarms with a negative CUSUM statistic.
func TestDetectDownwardStep(t *testing.T) {
	rng := mathx.NewRNG(11)
	series := noisySeries(rng, 60, 1.0, 0.02)
	series = append(series, noisySeries(rng, 60, 0.7, 0.02)...)
	res := Detect(series, DriftConfig{Warmup: 50})
	var sawCUSUM bool
	for _, a := range res.Alarms {
		if a.Index < 60 {
			t.Errorf("%s alarmed at %d, before the step", a.Detector, a.Index)
		}
		if a.Detector == "cusum" {
			sawCUSUM = true
			if a.Stat >= 0 {
				t.Errorf("downward step must report a negative CUSUM stat, got %v", a.Stat)
			}
		}
	}
	if !sawCUSUM {
		t.Fatalf("no cusum alarm: %+v", res.Alarms)
	}
}

// TestDetectRampDrift: a slow ramp (0.25σ per sample) accumulates in
// the CUSUM long before the raw values look alarming point-wise.
func TestDetectRampDrift(t *testing.T) {
	rng := mathx.NewRNG(3)
	series := noisySeries(rng, 40, 1.0, 0.02)
	for i := 0; i < 80; i++ {
		series = append(series, 1.0+0.005*float64(i+1)+0.02*rng.NormFloat64())
	}
	res := Detect(series, DriftConfig{})
	var cusumAt = -1
	for _, a := range res.Alarms {
		if a.Index < 40 {
			t.Errorf("%s alarmed at %d, before the ramp at 40", a.Detector, a.Index)
		}
		if a.Detector == "cusum" {
			cusumAt = a.Index
		}
	}
	if cusumAt < 0 {
		t.Fatalf("ramp did not trip CUSUM: %+v", res.Alarms)
	}
	// The ramp reaches +5σ drift (0.1 absolute) only at sample ~60;
	// CUSUM accumulation should fire well before sample 80.
	if cusumAt > 80 {
		t.Errorf("cusum alarm at %d, expected before 80 on a 0.25σ/sample ramp", cusumAt)
	}
}

// TestDetectShortSeries: warmup-or-shorter series never alarm.
func TestDetectShortSeries(t *testing.T) {
	res := Detect([]float64{1, 2, 3}, DriftConfig{})
	if res.Drifted() {
		t.Fatalf("short series alarmed: %+v", res.Alarms)
	}
}

// TestDetectZeroVarianceWarmup: a deterministic warmup (repeated
// identical seeded runs) still detects a later change without
// alarming on bit-identical values.
func TestDetectZeroVarianceWarmup(t *testing.T) {
	series := make([]float64, 30)
	for i := range series {
		series[i] = 1.25
	}
	if res := Detect(series, DriftConfig{}); res.Drifted() {
		t.Fatalf("constant series alarmed: %+v", res.Alarms)
	}
	series = append(series, 1.26) // any real change
	res := Detect(series, DriftConfig{})
	if !res.Drifted() {
		t.Fatal("change after deterministic warmup not detected")
	}
}

// TestDetectFirstAlarmOnly: each detector reports its onset once, not
// every post-drift sample.
func TestDetectFirstAlarmOnly(t *testing.T) {
	rng := mathx.NewRNG(5)
	series := noisySeries(rng, 40, 1.0, 0.02)
	series = append(series, noisySeries(rng, 200, 2.0, 0.02)...)
	res := Detect(series, DriftConfig{Warmup: 40})
	if len(res.Alarms) > 2 {
		t.Fatalf("want at most one alarm per detector, got %+v", res.Alarms)
	}
}
