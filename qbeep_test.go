package qbeep

import (
	"math"
	"strings"
	"testing"
)

func TestEndToEndBVPipeline(t *testing.T) {
	secret := "10110101"
	src, err := BernsteinVaziraniQASM(secret)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "OPENQASM 2.0;") {
		t.Fatal("not QASM")
	}
	sim, err := Simulate(src, "istanbul", 4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Lambda.Total() <= 0 {
		t.Errorf("lambda %v", sim.Lambda.Total())
	}
	// Drop the ancilla before scoring.
	keep, err := DataQubits(len(secret))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarginalizeCounts(sim.Raw, keep)
	if err != nil {
		t.Fatal(err)
	}
	mitigated, err := Mitigate(raw, sim.Lambda.Total(), NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	pstRaw, err := PST(raw, secret)
	if err != nil {
		t.Fatal(err)
	}
	pstQB, err := PST(mitigated, secret)
	if err != nil {
		t.Fatal(err)
	}
	if pstQB < pstRaw {
		t.Errorf("mitigation reduced PST: %v -> %v", pstRaw, pstQB)
	}
	// Total mass preserved.
	var totRaw, totQB float64
	for _, c := range raw {
		totRaw += c
	}
	for _, c := range mitigated {
		totQB += c
	}
	if math.Abs(totRaw-totQB) > 1e-6 {
		t.Errorf("mass changed: %v -> %v", totRaw, totQB)
	}
}

func TestMitigateValidatesInput(t *testing.T) {
	if _, err := Mitigate(Counts{}, 1, NewOptions()); err == nil {
		t.Error("empty counts should error")
	}
	if _, err := Mitigate(Counts{"01": 1, "011": 1}, 1, NewOptions()); err == nil {
		t.Error("mixed widths should error")
	}
	if _, err := Mitigate(Counts{"01": 1}, -1, NewOptions()); err == nil {
		t.Error("negative lambda should error")
	}
	if _, err := Mitigate(Counts{"01": 1}, 1, Options{}); err == nil {
		t.Error("zero options should error")
	}
}

func TestMitigateTrackedTrace(t *testing.T) {
	raw := Counts{"000": 70, "001": 15, "010": 10, "111": 5}
	ideal := Counts{"000": 1}
	out, trace, err := MitigateTracked(raw, 1, NewOptions(), ideal)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 21 {
		t.Errorf("trace length %d", len(trace))
	}
	if out == nil {
		t.Fatal("nil output")
	}
	if trace[len(trace)-1] < trace[0] {
		t.Errorf("fidelity regressed: %v -> %v", trace[0], trace[len(trace)-1])
	}
}

func TestEstimateLambdaQASM(t *testing.T) {
	src, _ := BernsteinVaziraniQASM("1011")
	lb, err := EstimateLambdaQASM(src, "galway")
	if err != nil {
		t.Fatal(err)
	}
	if lb.Total() <= 0 || lb.Time <= 0 {
		t.Errorf("lambda %+v", lb)
	}
	if _, err := EstimateLambdaQASM(src, "nope"); err == nil {
		t.Error("unknown backend should error")
	}
	if _, err := EstimateLambdaQASM("not qasm", "galway"); err == nil {
		t.Error("bad QASM should error")
	}
}

// TestEstimateLambdaQASMIonBackend is the regression test for the
// backend-name inconsistency: Simulate/SimulateExact accepted "ion-5"
// while EstimateLambdaQASM rejected it (it consulted the catalog
// directly). All three must resolve names identically.
func TestEstimateLambdaQASMIonBackend(t *testing.T) {
	src, err := BernsteinVaziraniQASM("1011")
	if err != nil {
		t.Fatal(err)
	}
	lb, err := EstimateLambdaQASM(src, "ion-5")
	if err != nil {
		t.Fatalf("EstimateLambdaQASM rejects ion-5 while Simulate accepts it: %v", err)
	}
	if lb.Total() <= 0 || lb.Time <= 0 {
		t.Errorf("ion-5 lambda %+v", lb)
	}
	// Same pipeline through Simulate must agree on the estimate.
	sim, err := Simulate(src, "ion-5", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lb.Total(), sim.Lambda.Total(); got != want {
		t.Errorf("lambda mismatch: EstimateLambdaQASM %v vs Simulate %v", got, want)
	}
}

func TestBackendsCatalog(t *testing.T) {
	bs, err := Backends()
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 17 { // 16 superconducting + 1 ion
		t.Fatalf("catalog size %d", len(bs))
	}
	var ion bool
	for _, b := range bs {
		if b.Qubits <= 0 || b.MeanT1 <= 0 {
			t.Errorf("%s: bad info %+v", b.Name, b)
		}
		if b.Architecture == "trapped-ion" {
			ion = true
		}
	}
	if !ion {
		t.Error("ion backend missing")
	}
}

func TestSuiteCircuits(t *testing.T) {
	names := SuiteNames()
	if len(names) < 12 {
		t.Fatalf("suite size %d", len(names))
	}
	src, ideal, data, err := SuiteCircuit("cat_state_n4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "qreg q[4];") {
		t.Errorf("unexpected QASM: %s", src)
	}
	if len(ideal) != 2 {
		t.Errorf("cat ideal: %v", ideal)
	}
	if len(data) != 4 {
		t.Errorf("cat data qubits: %v", data)
	}
	// An ancilla-carrying circuit reports fewer data qubits than its
	// register width.
	lpnSrc, _, lpnData, err := SuiteCircuit("lpn_n5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lpnSrc, "qreg q[5];") || len(lpnData) != 4 {
		t.Errorf("lpn: %d data qubits", len(lpnData))
	}
	if _, _, _, err := SuiteCircuit("bogus"); err == nil {
		t.Error("unknown suite name should error")
	}
}

func TestSimulateOnIonBackend(t *testing.T) {
	src, _ := BernsteinVaziraniQASM("101")
	sim, err := Simulate(src, "ion-5", 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Raw) == 0 {
		t.Error("no counts")
	}
}

func TestFidelityAndPSTHelpers(t *testing.T) {
	a := Counts{"00": 1}
	b := Counts{"00": 1}
	f, err := Fidelity(a, b)
	if err != nil || math.Abs(f-1) > 1e-12 {
		t.Errorf("fidelity %v err %v", f, err)
	}
	if _, err := Fidelity(a, Counts{"000": 1}); err == nil {
		t.Error("width mismatch should error")
	}
	if _, err := PST(a, "000"); err == nil {
		t.Error("PST width mismatch should error")
	}
	p, err := PST(Counts{"01": 3, "10": 1}, "01")
	if err != nil || p != 0.75 {
		t.Errorf("PST %v err %v", p, err)
	}
}

func TestTranspileQASM(t *testing.T) {
	src, _ := BernsteinVaziraniQASM("1101")
	out, dur, err := TranspileQASM(src, "carthage")
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Errorf("duration %v", dur)
	}
	for _, forbidden := range []string{"ccx", " h ", "swap"} {
		if strings.Contains(out, forbidden+" q[") {
			t.Errorf("non-basis gate %q survived transpilation", forbidden)
		}
	}
	if !strings.Contains(out, "cx q[") {
		t.Error("no CX in routed circuit")
	}
}

func TestMarginalizeCounts(t *testing.T) {
	c := Counts{"101": 5, "001": 3} // qubit2 qubit1 qubit0
	m, err := MarginalizeCounts(c, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m["01"] != 8 {
		t.Errorf("marginal %v", m)
	}
	if _, err := MarginalizeCounts(c, []int{9}); err == nil {
		t.Error("bad keep list should error")
	}
	if _, err := DataQubits(0); err == nil {
		t.Error("zero width should error")
	}
}

func TestSimulateExact(t *testing.T) {
	src, err := BernsteinVaziraniQASM("101")
	if err != nil {
		t.Fatal(err)
	}
	exact, sampled, err := SimulateExact(src, "auckland", 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, c := range exact {
		mass += c
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("exact mass %v", mass)
	}
	var shots float64
	for _, c := range sampled {
		shots += c
	}
	if shots != 2000 {
		t.Errorf("sampled shots %v", shots)
	}
	// Zero shots: no sampled map.
	_, none, err := SimulateExact(src, "auckland", 0, 0)
	if err != nil || none != nil {
		t.Errorf("zero-shot: %v %v", none, err)
	}
	// Over-wide circuit rejected.
	wide, _ := BernsteinVaziraniQASM("10110101011")
	if _, _, err := SimulateExact(wide, "galway", 0, 0); err == nil {
		t.Error("over-wide should error")
	}
}
