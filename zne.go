package qbeep

import (
	"qbeep/internal/qasm"
	"qbeep/internal/zne"
)

// FoldQASM amplifies a circuit's noise exposure by unitary gate folding
// (G → G·G†·G at scale 3, and so on for odd scales): the returned OpenQASM
// program computes the same unitary with scale× the gate count. Run the
// folded variants and extrapolate an observable to zero noise with
// ExtrapolateZero — zero-noise extrapolation, a QEM technique that
// composes with Q-BEEP (ZNE corrects expectation values, Q-BEEP corrects
// distributions).
func FoldQASM(qasmSource string, scale int) (string, error) {
	c, err := qasm.Parse(qasmSource)
	if err != nil {
		return "", err
	}
	folded, err := zne.Fold(c, scale)
	if err != nil {
		return "", err
	}
	return qasm.Write(folded)
}

// ZNEPoint is one (noise scale, measured observable) sample for
// extrapolation.
type ZNEPoint = zne.Point

// ExtrapolateZero fits measured observable values against their noise
// scales and returns the zero-noise estimate. Linear fitting is used —
// robust for the 2–4 point protocols folding supports; see also
// ExtrapolateZeroExp and the internal zne package for Richardson
// extrapolation.
func ExtrapolateZero(points []ZNEPoint) (float64, error) {
	return zne.ExtrapolateLinear(points)
}

// ExtrapolateZeroExp fits the exponential-decay model value = a·e^(b·s) —
// the right choice for success probabilities, which decay geometrically
// with the folded gate count.
func ExtrapolateZeroExp(points []ZNEPoint) (float64, error) {
	return zne.ExtrapolateExp(points)
}
