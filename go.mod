module qbeep

go 1.22
