package qbeep

// The benchmark harness regenerates every figure of the paper's
// evaluation (run with -bench and read the custom metrics), plus the
// ablation studies DESIGN.md §5 calls out. Figure benches run the same
// runners as cmd/qbeep-experiments at a reduced corpus scale so a full
// -bench=. pass stays tractable; pass -scale via the command for
// paper-sized corpora.

import (
	"testing"

	"qbeep/internal/algorithms"
	"qbeep/internal/bitstring"
	"qbeep/internal/core"
	"qbeep/internal/device"
	"qbeep/internal/experiments"
	"qbeep/internal/mathx"
	"qbeep/internal/noise"
)

func benchCfg() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Shots = 2048
	return cfg
}

// BenchmarkFigure1 regenerates Fig. 1: the showcase Hamming spectrum and
// the 8-qubit BV mitigation demo.
func BenchmarkFigure1(b *testing.B) {
	var pstGain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		pstGain = res.PSTQBeep / res.PSTRaw
	}
	b.ReportMetric(pstGain, "pst-gain")
}

// BenchmarkFigure2 regenerates Fig. 2: spectrum model comparisons over 8
// BV widths.
func BenchmarkFigure2(b *testing.B) {
	var wins float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		wins = 0
		for _, s := range res {
			if s.HellingerQBeep < s.HellingerHammer {
				wins++
			}
		}
	}
	b.ReportMetric(wins, "qbeep-wins-of-8")
}

// BenchmarkFigure4 regenerates Fig. 4: RB EHD growth and Index of
// Dispersion on both architectures.
func BenchmarkFigure4(b *testing.B) {
	var iod float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		iod = res.MeanIoDSC
	}
	b.ReportMetric(iod, "mean-iod")
}

// BenchmarkFigure6 regenerates Fig. 6: Hellinger-distance validation of
// the five spectrum models.
func BenchmarkFigure6(b *testing.B) {
	var qb float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		qb = res.MeanQBeep
	}
	b.ReportMetric(qb, "qbeep-hellinger")
}

// BenchmarkFigure7 regenerates Fig. 7: the BV PST/fidelity evaluation
// against HAMMER.
func BenchmarkFigure7(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		mean = res.PSTQBeep.Mean
	}
	b.ReportMetric(mean, "mean-pst-gain")
}

// BenchmarkFigure8 regenerates Fig. 8 (and 9/11, which share the sweep):
// QASMBench fidelity changes per algorithm.
func BenchmarkFigure8(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunQASMBench(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		mean = res.Overall.Mean
	}
	b.ReportMetric(mean, "mean-fid-gain")
}

// BenchmarkFigure9 regenerates Fig. 9: per-machine average fidelity
// change (same sweep as Fig. 8, reported by backend).
func BenchmarkFigure9(b *testing.B) {
	var machines float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		machines = float64(len(res.ByBackend))
	}
	b.ReportMetric(machines, "machines")
}

// BenchmarkFigure10 regenerates Fig. 10: QAOA Cost-Ratio improvements.
func BenchmarkFigure10(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		mean = res.Improvement.Mean
	}
	b.ReportMetric(mean, "mean-cr-gain")
}

// BenchmarkFigure11 regenerates Fig. 11: the entropy-vs-improvement
// anticorrelation.
func BenchmarkFigure11(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		r = res.EntropyFit.R
	}
	b.ReportMetric(r, "entropy-r")
}

// ---- Ablations (DESIGN.md §5) ----

// ablationCounts builds a reference noisy BV run once per benchmark.
func ablationCounts(b *testing.B) (raw, ideal *bitstring.Dist, lambda float64) {
	b.Helper()
	w, err := algorithms.BernsteinVazirani(10, 0b1011010011)
	if err != nil {
		b.Fatal(err)
	}
	bk, err := device.ByName("medellin")
	if err != nil {
		b.Fatal(err)
	}
	exec, err := noise.NewExecutor(bk, noise.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	run, err := exec.Execute(w.Circuit, 4096, mathx.NewRNG(99))
	if err != nil {
		b.Fatal(err)
	}
	lb, err := core.EstimateLambda(run.Transpiled, bk)
	if err != nil {
		b.Fatal(err)
	}
	rawD, err := w.MarginalCounts(run.Counts)
	if err != nil {
		b.Fatal(err)
	}
	idealD, err := w.MarginalCounts(run.Ideal)
	if err != nil {
		b.Fatal(err)
	}
	return rawD, idealD, lb.Lambda()
}

// BenchmarkAblationEdgeModel compares the Poisson edge model against the
// HAMMER-style fixed inverse-distance weighting inside the same iterative
// engine.
func BenchmarkAblationEdgeModel(b *testing.B) {
	raw, ideal, lambda := ablationCounts(b)
	for _, tc := range []struct {
		name string
		w    core.EdgeWeighter
	}{
		{"poisson", nil}, // nil selects PoissonEdges(λ)
		{"inverse-distance", core.InverseDistanceEdges{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var fid float64
			for i := 0; i < b.N; i++ {
				opts := core.NewOptions()
				opts.Weighter = tc.w
				out, err := core.Mitigate(raw, lambda, opts)
				if err != nil {
					b.Fatal(err)
				}
				fid = bitstring.Fidelity(ideal, out)
			}
			b.ReportMetric(fid, "fidelity")
		})
	}
}

// BenchmarkAblationIterations sweeps the iteration count and the
// learning-rate schedule (constant vs the paper's dampened 1/n).
func BenchmarkAblationIterations(b *testing.B) {
	raw, ideal, lambda := ablationCounts(b)
	for _, tc := range []struct {
		name  string
		iters int
		lr    func(int) float64
	}{
		{"iter1-damped", 1, nil},
		{"iter5-damped", 5, nil},
		{"iter20-damped", 20, nil},
		{"iter20-constant", 20, func(int) float64 { return 1 }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var fid float64
			for i := 0; i < b.N; i++ {
				opts := core.NewOptions()
				opts.Iterations = tc.iters
				opts.LearningRate = tc.lr
				out, err := core.Mitigate(raw, lambda, opts)
				if err != nil {
					b.Fatal(err)
				}
				fid = bitstring.Fidelity(ideal, out)
			}
			b.ReportMetric(fid, "fidelity")
		})
	}
}

// BenchmarkAblationEpsilon sweeps the edge threshold ε, trading state
// graph size (the O(N·r) scalability knob) against mitigation quality.
func BenchmarkAblationEpsilon(b *testing.B) {
	raw, ideal, lambda := ablationCounts(b)
	for _, eps := range []float64{0.01, 0.05, 0.2} {
		b.Run(formatEps(eps), func(b *testing.B) {
			var fid, edges float64
			for i := 0; i < b.N; i++ {
				g, err := core.BuildStateGraph(raw, core.PoissonEdges{Lambda: lambda}, eps)
				if err != nil {
					b.Fatal(err)
				}
				edges = float64(g.NumEdges())
				opts := core.NewOptions()
				opts.Epsilon = eps
				out, err := core.Mitigate(raw, lambda, opts)
				if err != nil {
					b.Fatal(err)
				}
				fid = bitstring.Fidelity(ideal, out)
			}
			b.ReportMetric(fid, "fidelity")
			b.ReportMetric(edges, "edges")
		})
	}
}

func formatEps(e float64) string {
	switch e {
	case 0.01:
		return "eps0.01"
	case 0.05:
		return "eps0.05"
	default:
		return "eps0.20"
	}
}

// BenchmarkAblationLambda compares λ sources: the full Eq. 2 model,
// decoherence-only, gate-error-only, and the post-hoc oracle (MLE fit on
// the observed spectrum) — quantifying §3.5's sensitivity claim.
func BenchmarkAblationLambda(b *testing.B) {
	w, err := algorithms.BernsteinVazirani(10, 0b1011010011)
	if err != nil {
		b.Fatal(err)
	}
	bk, err := device.ByName("medellin")
	if err != nil {
		b.Fatal(err)
	}
	exec, err := noise.NewExecutor(bk, noise.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	run, err := exec.Execute(w.Circuit, 4096, mathx.NewRNG(99))
	if err != nil {
		b.Fatal(err)
	}
	lb, err := core.EstimateLambda(run.Transpiled, bk)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := w.MarginalCounts(run.Counts)
	if err != nil {
		b.Fatal(err)
	}
	ideal, err := w.MarginalCounts(run.Ideal)
	if err != nil {
		b.Fatal(err)
	}
	// Oracle: MLE Poisson on the observed error spectrum.
	spec := raw.HammingSpectrum(w.Expected)
	spec[0] = 0
	values := make([]int, len(spec))
	for i := range values {
		values[i] = i
	}
	oracle, err := mathx.FitPoissonMLE(values, spec)
	if err != nil {
		b.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		lambda float64
	}{
		{"full-eq2", lb.Lambda()},
		{"decoherence-only", lb.T1 + lb.T2},
		{"gates-only", lb.Gates},
		{"oracle-mle", oracle.Lambda},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var fid float64
			for i := 0; i < b.N; i++ {
				out, err := core.Mitigate(raw, tc.lambda, core.NewOptions())
				if err != nil {
					b.Fatal(err)
				}
				fid = bitstring.Fidelity(ideal, out)
			}
			b.ReportMetric(fid, "fidelity")
		})
	}
}

// BenchmarkMitigateThroughput measures raw mitigation cost on a
// 4096-shot, 12-qubit distribution (the post-processing path a vendor
// would run per job).
func BenchmarkMitigateThroughput(b *testing.B) {
	rng := mathx.NewRNG(5)
	raw := bitstring.NewDist(12)
	truth := bitstring.BitString(0b101101001101)
	pois := mathx.Poisson{Lambda: 1.6}
	for i := 0; i < 4096; i++ {
		v := truth
		k := pois.Sample(rng.Float64)
		for j := 0; j < k; j++ {
			v = v.FlipBit(rng.Intn(12))
		}
		raw.Add(v, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Mitigate(raw, 1.6, core.NewOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
