package qbeep

import (
	"math"
	"testing"
)

func TestCorrectReadout(t *testing.T) {
	// Exact confusion of a point mass on a 2-qubit register.
	flips := []float64{0.1, 0.05}
	counts := Counts{}
	truth := "10" // qubit1=1, qubit0=0
	for _, tc := range []struct {
		s string
		p float64
	}{
		{"10", (1 - 0.1) * (1 - 0.05)},
		{"11", (1 - 0.05) * 0.1},
		{"00", (1 - 0.1) * 0.05},
		{"01", 0.1 * 0.05},
	} {
		counts[tc.s] = tc.p * 1000
	}
	out, err := CorrectReadout(counts, flips)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[truth]-1000) > 1e-6 {
		t.Errorf("recovered %v want 1000: %v", out[truth], out)
	}
	if _, err := CorrectReadout(Counts{"0": 1}, []float64{0.6}); err == nil {
		t.Error("rate >= 0.5 should error")
	}
	if _, err := CorrectReadout(Counts{"01": 1}, []float64{0.1}); err == nil {
		t.Error("width mismatch should error")
	}
}

func TestBackendReadoutRates(t *testing.T) {
	rates, err := BackendReadoutRates("istanbul", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 5 {
		t.Fatalf("rates %v", rates)
	}
	for _, r := range rates {
		if r <= 0 || r >= 0.5 {
			t.Errorf("rate %v out of plausible range", r)
		}
	}
	if _, err := BackendReadoutRates("istanbul", 0); err == nil {
		t.Error("zero width should error")
	}
	if _, err := BackendReadoutRates("nope", 3); err == nil {
		t.Error("unknown backend should error")
	}
}

func TestReadoutThenQBEEPComposition(t *testing.T) {
	// Full pipeline on a synthetic BV: readout correction before Q-BEEP
	// should not hurt, and the composed result should beat raw.
	secret := "101101"
	src, err := BernsteinVaziraniQASM(secret)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(src, "dresden", 4096, 5) // dresden: noisy 7-qubit chain
	if err != nil {
		t.Fatal(err)
	}
	keep, _ := DataQubits(len(secret))
	raw, err := MarginalizeCounts(sim.Raw, keep)
	if err != nil {
		t.Fatal(err)
	}

	pstRaw, err := PST(raw, secret)
	if err != nil {
		t.Fatal(err)
	}
	flips := make([]float64, len(secret))
	for i := range flips {
		flips[i] = 0.02 // conservative readout estimate for the synthetic fleet
	}
	corrected, err := CorrectReadout(raw, flips)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := Mitigate(corrected, sim.Lambda.Total(), NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	pstComposed, err := PST(composed, secret)
	if err != nil {
		t.Fatal(err)
	}
	if pstComposed <= pstRaw {
		t.Errorf("composition should beat raw: %v -> %v", pstRaw, pstComposed)
	}
}

func TestMitigateEnsemblePublic(t *testing.T) {
	secret := "10110"
	src, err := BernsteinVaziraniQASM(secret)
	if err != nil {
		t.Fatal(err)
	}
	keep, _ := DataQubits(len(secret))
	var runs []EnsembleRun
	for i, backend := range []string{"galway", "istanbul", "nairobi2"} {
		sim, err := Simulate(src, backend, 2048, uint64(40+i))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := MarginalizeCounts(sim.Raw, keep)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, EnsembleRun{Counts: raw, Lambda: sim.Lambda.Total()})
	}
	merged, err := MitigateEnsemble(runs, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	pst, err := PST(merged, secret)
	if err != nil {
		t.Fatal(err)
	}
	// Each member's raw PST:
	worst := 1.0
	for _, r := range runs {
		p, err := PST(r.Counts, secret)
		if err != nil {
			t.Fatal(err)
		}
		if p < worst {
			worst = p
		}
	}
	if pst <= worst {
		t.Errorf("ensemble PST %v should beat the worst raw member %v", pst, worst)
	}
	if _, err := MitigateEnsemble(nil, NewOptions()); err == nil {
		t.Error("empty ensemble should error")
	}
	if _, err := MitigateEnsemble([]EnsembleRun{{Counts: Counts{"0x": 1}}}, NewOptions()); err == nil {
		t.Error("bad counts should error")
	}
}
