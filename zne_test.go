package qbeep

import (
	"math"
	"strings"
	"testing"
)

func TestFoldQASM(t *testing.T) {
	src, err := BernsteinVaziraniQASM("101")
	if err != nil {
		t.Fatal(err)
	}
	folded, err := FoldQASM(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(folded, "OPENQASM 2.0;") {
		t.Fatal("not QASM")
	}
	// Folded program has (roughly 3x) more gate lines than the original.
	if strings.Count(folded, ";") <= strings.Count(src, ";") {
		t.Error("folding did not grow the program")
	}
	if _, err := FoldQASM(src, 2); err == nil {
		t.Error("even scale should error")
	}
	if _, err := FoldQASM("garbage", 3); err == nil {
		t.Error("bad QASM should error")
	}
}

func TestFoldQASMSemanticsThroughSimulate(t *testing.T) {
	// The folded circuit's ideal distribution must equal the original's.
	secret := "1011"
	src, err := BernsteinVaziraniQASM(secret)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := FoldQASM(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Simulate(src, "galway", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(folded, "galway", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := Fidelity(a.Ideal, b.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fid-1) > 1e-9 {
		t.Errorf("ideal distributions diverged: F=%v", fid)
	}
	// The folded induction must see a larger λ (more gates, longer
	// schedule) — that is the point of folding.
	if b.Lambda.Total() <= a.Lambda.Total() {
		t.Errorf("folding did not raise lambda: %v -> %v", a.Lambda.Total(), b.Lambda.Total())
	}
}

func TestExtrapolateZeroPublic(t *testing.T) {
	pts := []ZNEPoint{{Scale: 1, Value: 0.8}, {Scale: 3, Value: 0.6}}
	got, err := ExtrapolateZero(pts)
	if err != nil || math.Abs(got-0.9) > 1e-12 {
		t.Errorf("linear: %v, %v", got, err)
	}
	expPts := []ZNEPoint{
		{Scale: 1, Value: 0.9 * math.Exp(-0.2)},
		{Scale: 3, Value: 0.9 * math.Exp(-0.6)},
	}
	got, err = ExtrapolateZeroExp(expPts)
	if err != nil || math.Abs(got-0.9) > 1e-9 {
		t.Errorf("exp: %v, %v", got, err)
	}
	if _, err := ExtrapolateZero(nil); err == nil {
		t.Error("no points should error")
	}
	if _, err := ExtrapolateZeroExp([]ZNEPoint{{Scale: 1, Value: -1}, {Scale: 3, Value: 1}}); err == nil {
		t.Error("negative values should error for exp fit")
	}
}
